//! Cached execution plans: prepacked weight panels + blocking choices.
//!
//! Every GEMM call packs its operands into microkernel order before
//! computing. For activations that is unavoidable — they change every
//! call — but weights are identical across calls until an optimizer
//! update touches them, and both the split trainer and the serve/fleet
//! paths were re-packing the same weight matrices on every forward.
//! A *plan* hoists that work out of the hot path:
//!
//! - [`GemmPlan`] owns the dense layer's weight packed in the forward
//!   (`y = x·Wᵀ`) orientation, plus — built lazily on first backward, so
//!   eval/serve never pays for it — the backward (`dx = g·W`)
//!   orientation.
//! - [`ConvPlan`] owns the filter matrix packed as microkernel A-panels
//!   for the forward conv GEMM, the lazily-built transposed panels for
//!   the input-gradient GEMM, and the cached im2col geometry shared by
//!   forward and backward (shapes are computed once, not re-derived).
//!
//! All panel stores are 64-byte aligned and immutable after packing, so
//! they are shared read-only across row panels and pool threads. A plan
//! carries the *generation* of the weight it packed; layers compare it
//! against the parameter's version counter and repack only when an
//! optimizer update (or a snapshot restore) actually touched the weight
//! — training repacks at most once per step, eval never repacks after
//! warmup. Cache traffic is observable through [`stats`] and the
//! `plan.cache_hits` / `plan.cache_misses` / `plan.invalidations`
//! counters plus the `plan.pack_bytes` gauge.
//!
//! Blocking parameters (`kc`, parallel `row_block`) are chosen per call
//! shape by [`choose_blocking`] — a tiny deterministic autotuner (a pure
//! cost model over the shape, no timing, so picks are reproducible);
//! every pick is recorded and exported by `kernel_bench` into
//! `BENCH_kernels.json`. None of these choices affect results: each
//! output element always streams the full depth range in ascending order
//! through the same fused kernel (see [`crate::ops::matmul`]), so
//! planned and unplanned execution are **bit-identical** across ISAs,
//! thread counts, and blocking picks.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::collections::BTreeMap;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::error::{Result, TensorError};
use crate::ops::conv::Conv2dSpec;
use crate::ops::matmul::{self, PanelsA};
use crate::ops::microkernel::{self, MR, NR};
use crate::pool;
use crate::tensor::Tensor;

// Panel stores pack at a process-global [`WeightPrecision`]: `f32`
// (default) or binary16 (`MEDSPLIT_WEIGHT_PREC=f16`), which halves
// resident panel bytes and B-panel bandwidth while accumulating in f32
// through the f16-storage microkernel family. Plans record the precision
// they packed at; `ensure` treats a precision switch like a weight
// update (invalidate + repack), so a steady-state process still never
// repacks after warmup.

/// Alignment of plan panel stores, matching the scratch arena.
const ALIGN: usize = 64;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static PACKS: AtomicU64 = AtomicU64::new(0);
/// Bytes currently resident in plan panel stores (gauge, not a counter).
static PACK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
    medsplit_telemetry::counter_add("plan.cache_hits", 1);
}

fn note_miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
    medsplit_telemetry::counter_add("plan.cache_misses", 1);
}

fn note_invalidation() {
    INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
    medsplit_telemetry::counter_add("plan.invalidations", 1);
}

fn note_pack(bytes: u64) {
    PACKS.fetch_add(1, Ordering::Relaxed);
    let live = PACK_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    medsplit_telemetry::gauge_set("plan.pack_bytes", live as f64);
}

fn note_release(bytes: u64) {
    let live = PACK_BYTES.fetch_sub(bytes, Ordering::Relaxed) - bytes;
    medsplit_telemetry::gauge_set("plan.pack_bytes", live as f64);
}

/// A point-in-time snapshot of the global plan-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Forward/backward calls that reused a current plan.
    pub hits: u64,
    /// Plan builds for a parameter that had no plan yet (warmup).
    pub misses: u64,
    /// Plan rebuilds because the weight's version moved past the plan's
    /// generation (one per touched parameter per optimizer step).
    pub invalidations: u64,
    /// Panel-pack events (every miss/invalidation packs at least once;
    /// lazy backward orientations pack on first use). Subtract two
    /// snapshots to measure repacks over a region of code.
    pub packs: u64,
    /// Bytes currently held by live plan panel stores.
    pub pack_bytes: u64,
}

/// Reads the plan-cache counters; subtract two snapshots to measure the
/// packing behaviour of a region (e.g. "zero repacks per eval step").
pub fn stats() -> PlanStats {
    PlanStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        invalidations: INVALIDATIONS.load(Ordering::Relaxed),
        packs: PACKS.load(Ordering::Relaxed),
        pack_bytes: PACK_BYTES.load(Ordering::Relaxed),
    }
}

/// A 64-byte-aligned, fixed-size store for packed panels — `f32` for
/// full-precision panels, `u16` for binary16 bit patterns.
///
/// Written once during packing, then shared read-only across pool
/// threads (the microkernels require the aligned B loads this alignment
/// guarantees: 32-byte `vmovaps` for f32 panels, 16-byte `vcvtph2ps`
/// source loads for f16 panels).
struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: the buffer is uniquely owned during the pack (`as_mut_slice`
// requires `&mut self`) and only shared immutably afterwards; the plain
// number types stored here have no thread affinity.
unsafe impl<T: Send> Send for AlignedVec<T> {}
// SAFETY: `&AlignedVec<T>` only exposes `&[T]`.
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<T>(), ALIGN).expect("plan panel layout")
    }

    /// Allocates a zeroed, aligned buffer and accounts it as a pack.
    /// (All-zero bytes are `+0.0` in both storage formats.)
    fn new(len: usize) -> Self {
        if len == 0 {
            note_pack(0);
            return AlignedVec {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: `len > 0` so the layout has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        note_pack((len * std::mem::size_of::<T>()) as u64);
        AlignedVec { ptr, len }
    }

    fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: allocated with exactly `len` elements, alive until drop.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: as above; `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        note_release((self.len * std::mem::size_of::<T>()) as u64);
        if self.len > 0 {
            // SAFETY: allocated by `new` with this exact layout.
            unsafe {
                dealloc(
                    self.ptr.as_ptr().cast(),
                    Layout::from_size_align(self.len * std::mem::size_of::<T>(), ALIGN)
                        .expect("plan panel layout"),
                )
            };
        }
    }
}

impl<T> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec({} x {}B)", self.len, std::mem::size_of::<T>())
    }
}

/// Storage precision for plan-cached weight panels.
///
/// `F32` (the default) stores packed panels as the weights' native
/// `f32`; `F16` narrows each element to IEEE 754 binary16 **once at pack
/// time** (round-to-nearest-even) and widens it exactly inside the
/// microkernel, halving panel bytes and B-panel memory traffic. The
/// accumulate precision is always `f32` — only storage changes. Because
/// widening is exact, f16-storage GEMM results are bit-identical across
/// ISAs, thread counts, and blocking picks, exactly like the f32 path
/// (they differ *from* the f32 path by the one rounding at pack time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightPrecision {
    /// Native `f32` panel storage.
    F32,
    /// Binary16 panel storage, `f32` accumulate.
    F16,
}

impl WeightPrecision {
    /// Stable lowercase name (`f32` / `f16`) — the values
    /// `MEDSPLIT_WEIGHT_PREC` accepts.
    pub fn name(self) -> &'static str {
        match self {
            WeightPrecision::F32 => "f32",
            WeightPrecision::F16 => "f16",
        }
    }

    /// Bits per stored panel element (32 / 16), reported to telemetry.
    pub fn bits(self) -> u8 {
        match self {
            WeightPrecision::F32 => 32,
            WeightPrecision::F16 => 16,
        }
    }

    fn from_code(code: u8) -> WeightPrecision {
        match code {
            2 => WeightPrecision::F16,
            _ => WeightPrecision::F32,
        }
    }

    fn code(self) -> u8 {
        match self {
            WeightPrecision::F32 => 1,
            WeightPrecision::F16 => 2,
        }
    }
}

/// Active weight-panel precision: 0 = unresolved, else
/// `WeightPrecision::code()`.
static WEIGHT_PREC: AtomicU8 = AtomicU8::new(0);

/// The precision new plans pack at. Resolved once from
/// `MEDSPLIT_WEIGHT_PREC` (`f32` | `f16`, default `f32`), then cached;
/// [`set_weight_precision`] overrides it at runtime.
pub fn weight_precision() -> WeightPrecision {
    let code = WEIGHT_PREC.load(Ordering::Relaxed);
    if code != 0 {
        return WeightPrecision::from_code(code);
    }
    let prec = match std::env::var("MEDSPLIT_WEIGHT_PREC") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "f16" => WeightPrecision::F16,
            "" | "f32" => WeightPrecision::F32,
            other => {
                eprintln!("MEDSPLIT_WEIGHT_PREC={other:?} not recognised (f32|f16); using f32");
                WeightPrecision::F32
            }
        },
        Err(_) => WeightPrecision::F32,
    };
    // Racing initialisers compute the same value; last write wins.
    WEIGHT_PREC.store(prec.code(), Ordering::Relaxed);
    medsplit_telemetry::gauge_set("plan.weight_bits", f64::from(prec.bits()));
    prec
}

/// Overrides the pack precision at runtime (process-global, like
/// [`crate::simd::set_isa`]). Live plans are not touched: each layer's
/// next [`GemmPlan::ensure`]/[`ConvPlan::ensure`] sees the mismatch and
/// repacks, counted as an invalidation.
pub fn set_weight_precision(prec: WeightPrecision) {
    WEIGHT_PREC.store(prec.code(), Ordering::Relaxed);
    medsplit_telemetry::gauge_set("plan.weight_bits", f64::from(prec.bits()));
}

/// A packed panel store in either storage precision, with the packing
/// orientation erased (the constructor chose B-tile or A-panel layout).
#[derive(Debug)]
enum Panels {
    F32(AlignedVec<f32>),
    F16(AlignedVec<u16>),
}

impl Panels {
    /// Views an A-panel store as the compute driver's operand.
    fn as_panels_a(&self) -> PanelsA<'_> {
        match self {
            Panels::F32(v) => PanelsA::Packed(v.as_slice()),
            Panels::F16(v) => PanelsA::PackedF16(v.as_slice()),
        }
    }
}

/// Which planned operation a blocking pick belongs to (the tag under
/// which the autotuner records it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanKind {
    /// Dense forward `y = x·Wᵀ`.
    DenseFwd,
    /// Dense backward `dx = g·W`.
    DenseBwd,
    /// Conv forward filter × patch-tile GEMM.
    ConvFwd,
    /// Conv backward `dcols = Wᵀ·G` GEMM.
    ConvBwd,
}

impl PlanKind {
    /// Stable lowercase label used in recorded picks and bench output.
    pub fn label(self) -> &'static str {
        match self {
            PlanKind::DenseFwd => "dense_fwd",
            PlanKind::DenseBwd => "dense_bwd",
            PlanKind::ConvFwd => "conv_fwd",
            PlanKind::ConvBwd => "conv_bwd",
        }
    }
}

/// A per-shape blocking choice made by the deterministic autotuner.
///
/// `mr`/`nr` are the microkernel tile (fixed by the ISA family today,
/// recorded so the bench output is self-describing); `kc` blocks the
/// inner dimension; `nc` is the packed B width (whole-`n`, rounded up to
/// `nr` tiles — the pack is shared across all row panels); `row_block`
/// is the parallel work unit over output rows. None of these affect
/// output bits — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Microkernel tile height.
    pub mr: usize,
    /// Microkernel tile width.
    pub nr: usize,
    /// Inner-dimension block size.
    pub kc: usize,
    /// Packed B panel width (`n` rounded up to whole `nr` tiles).
    pub nc: usize,
    /// Output row-panel height distributed over the pool (multiple of
    /// `mr`, derived from the shape — never from the thread count).
    pub row_block: usize,
}

/// L1 budget for one `kc` step of packed A + packed B: a 32 KiB L1 minus
/// headroom for the C tile and stack.
const L1_BUDGET_BYTES: usize = 28 * 1024;

/// Chooses blocking for an `m×k×n` GEMM — a pure function of the shape
/// (deterministic; no timing feedback), so picks are reproducible across
/// runs and hosts. `kc` candidates are balanced splits of `k` at several
/// caps; the cost model charges C-spill traffic for every extra `kc`
/// block and rejects splits whose A+B footprint overflows the L1 budget,
/// tie-breaking toward the largest block. `row_block` targets ~8 panels
/// across `m` for load balance, clamped to `[MR, BLOCK]`.
///
/// The pick is recorded under `kind` for export into BENCH_kernels.json
/// (see [`recorded_picks`]).
pub fn choose_blocking(kind: PlanKind, m: usize, k: usize, n: usize) -> Blocking {
    let kc = if k == 0 {
        1
    } else {
        let mut best = (u64::MAX, 0usize);
        for cap in [KC_CAP / 4, KC_CAP / 2, KC_CAP] {
            let kc = k.div_ceil(k.div_ceil(cap));
            let spill = (k.div_ceil(kc) as u64 - 1) * (m.max(1) * n.max(1)) as u64;
            let over = if kc * (MR + NR) * std::mem::size_of::<f32>() > L1_BUDGET_BYTES {
                u64::MAX / 2
            } else {
                0
            };
            let cost = spill.saturating_add(over);
            // `<=`: later (larger) caps win ties.
            if cost <= best.0 {
                best = (cost, kc);
            }
        }
        best.1
    };
    let row_block = m
        .div_ceil(8)
        .div_ceil(MR)
        .max(1)
        .saturating_mul(MR)
        .clamp(MR, matmul::BLOCK);
    let b = Blocking {
        mr: MR,
        nr: NR,
        kc,
        nc: n.div_ceil(NR) * NR,
        row_block,
    };
    record_pick(kind, m, k, n, b);
    b
}

/// Upper cap on `kc`, matching the per-call driver's `KC_MAX` so planned
/// and unplanned paths make the same choice on today's cost model.
const KC_CAP: usize = 320;

type PickKey = (PlanKind, usize, usize, usize);

static PICKS: OnceLock<Mutex<BTreeMap<PickKey, Blocking>>> = OnceLock::new();

fn record_pick(kind: PlanKind, m: usize, k: usize, n: usize, b: Blocking) {
    let picks = PICKS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = picks.lock().expect("plan pick registry poisoned");
    map.entry((kind, m, k, n)).or_insert(b);
}

/// Every distinct `(op, m, k, n) → blocking` pick the autotuner has made
/// this process, in deterministic order. `kernel_bench` exports these
/// into `BENCH_kernels.json`.
pub fn recorded_picks() -> Vec<(String, Blocking)> {
    let picks = PICKS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let map = picks.lock().expect("plan pick registry poisoned");
    map.iter()
        .map(|(&(kind, m, k, n), &b)| (format!("{} m{m} k{k} n{n}", kind.label()), b))
        .collect()
}

/// Packs the NR-wide column tiles of a strided logical B into a fresh
/// aligned store at `prec`: `n.div_ceil(NR)` tiles of `k*NR`. The f32
/// layout is byte-identical to the per-call scratch pack in [`matmul`];
/// the f16 layout is the same tiles with each element narrowed once.
fn pack_b_panels(src: &[f32], rs: usize, cs: usize, k: usize, n: usize, prec: WeightPrecision) -> Panels {
    let nt = n.div_ceil(NR);
    let len = if k == 0 { 0 } else { nt * k * NR };
    match prec {
        WeightPrecision::F32 => {
            let mut buf = AlignedVec::new(len);
            if k > 0 {
                pool::parallel_chunks_mut(buf.as_mut_slice(), k * NR, |jt, tile| {
                    let j0 = jt * NR;
                    microkernel::pack_b_tile(src, rs, cs, j0, NR.min(n - j0), k, tile);
                });
            }
            Panels::F32(buf)
        }
        WeightPrecision::F16 => {
            let mut buf = AlignedVec::new(len);
            if k > 0 {
                pool::parallel_chunks_mut(buf.as_mut_slice(), k * NR, |jt, tile| {
                    let j0 = jt * NR;
                    microkernel::pack_b_tile_f16(src, rs, cs, j0, NR.min(n - j0), k, tile);
                });
            }
            Panels::F16(buf)
        }
    }
}

/// Packs the MR-row panels of a strided logical A into a fresh aligned
/// store at `prec`: `m.div_ceil(MR)` panels of `k*MR`, byte-identical
/// (at f32) to the per-block scratch pack in [`matmul`].
fn pack_a_panels(src: &[f32], rs: usize, cs: usize, m: usize, k: usize, prec: WeightPrecision) -> Panels {
    let nb = m.div_ceil(MR);
    let len = if k == 0 { 0 } else { nb * k * MR };
    match prec {
        WeightPrecision::F32 => {
            let mut buf = AlignedVec::new(len);
            if k > 0 {
                pool::parallel_chunks_mut(buf.as_mut_slice(), k * MR, |ib, panel| {
                    let i0 = ib * MR;
                    microkernel::pack_a_panel(src, rs, cs, i0, MR.min(m - i0), k, panel);
                });
            }
            Panels::F32(buf)
        }
        WeightPrecision::F16 => {
            let mut buf = AlignedVec::new(len);
            if k > 0 {
                pool::parallel_chunks_mut(buf.as_mut_slice(), k * MR, |ib, panel| {
                    let i0 = ib * MR;
                    microkernel::pack_a_panel_f16(src, rs, cs, i0, MR.min(m - i0), k, panel);
                });
            }
            Panels::F16(buf)
        }
    }
}

/// A cached execution plan for a dense layer's weight `W` (`[out, in]`,
/// row-major).
///
/// Owns the weight prepacked for the forward GEMM `y = x·Wᵀ` and,
/// lazily, for the backward GEMM `dx = g·W`. Immutable after packing
/// (modulo the lazy backward build), shared read-only across threads.
#[derive(Debug)]
pub struct GemmPlan {
    out_features: usize,
    in_features: usize,
    /// Packed B tiles for `x·Wᵀ` (logical B strides `(1, in)`).
    fwd: Panels,
    /// Packed B tiles for `g·W` (logical B strides `(in, 1)`); built on
    /// first backward so eval-only plans never pay for it.
    bwd: Option<Panels>,
    /// Storage precision both orientations were packed at (the global
    /// [`weight_precision`] at pack time).
    precision: WeightPrecision,
    generation: u64,
}

impl GemmPlan {
    /// Packs `weight` (`[out, in]`) for the forward orientation at the
    /// current [`weight_precision`], tagging the plan with `generation`
    /// (the weight's version counter).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix weights.
    pub fn pack_nt(weight: &Tensor, generation: u64) -> Result<GemmPlan> {
        Self::pack_nt_at(weight, generation, weight_precision())
    }

    /// [`pack_nt`](Self::pack_nt) at an explicit storage precision,
    /// ignoring the process-global setting (benchmarks and tests A/B the
    /// two storage formats with this).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix weights.
    pub fn pack_nt_at(weight: &Tensor, generation: u64, precision: WeightPrecision) -> Result<GemmPlan> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: weight.rank(),
                op: "GemmPlan::pack_nt",
            });
        }
        let (out_features, in_features) = (weight.dims()[0], weight.dims()[1]);
        // Logical B of x·Wᵀ is Wᵀ: element (p, j) = W[j, p] → strides (1, in).
        let fwd = pack_b_panels(
            weight.as_slice(),
            1,
            in_features,
            in_features,
            out_features,
            precision,
        );
        Ok(GemmPlan {
            out_features,
            in_features,
            fwd,
            bwd: None,
            precision,
            generation,
        })
    }

    /// Returns the plan in `slot` if its generation and storage
    /// precision both match, otherwise (re)packs `weight` into the slot.
    /// Counts a cache hit, miss (empty slot), or invalidation (stale
    /// generation or precision switch) accordingly.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::pack_nt`] shape errors.
    pub fn ensure<'a>(
        slot: &'a mut Option<GemmPlan>,
        weight: &Tensor,
        generation: u64,
    ) -> Result<&'a mut GemmPlan> {
        match slot.as_ref() {
            Some(p) if p.generation == generation && p.precision == weight_precision() => note_hit(),
            stale => {
                if stale.is_some() {
                    note_invalidation();
                } else {
                    note_miss();
                }
                *slot = Some(GemmPlan::pack_nt(weight, generation)?);
            }
        }
        Ok(slot.as_mut().expect("slot was just ensured"))
    }

    /// The weight version this plan packed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The storage precision this plan's panels were packed at.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Planned forward: `x · Wᵀ` using the cached panels — bit-identical
    /// to [`Tensor::matmul_nt`] against the original weight.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors if `x` is not `[N, in]`.
    pub fn matmul_nt(&self, x: &Tensor) -> Result<Tensor> {
        if x.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: x.rank(),
                op: "GemmPlan::matmul_nt",
            });
        }
        let (m, k) = (x.dims()[0], x.dims()[1]);
        if k != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: x.shape().clone(),
                rhs: crate::shape::Shape::from([self.out_features, self.in_features]),
                op: "GemmPlan::matmul_nt",
            });
        }
        let n = self.out_features;
        let _span = medsplit_telemetry::span("gemm");
        let b = choose_blocking(PlanKind::DenseFwd, m, k, n);
        let mut out = Tensor::zeros([m, n]);
        let a = PanelsA::Strided {
            src: x.as_slice(),
            rs: k,
            cs: 1,
        };
        match &self.fwd {
            Panels::F32(p) => matmul::gemm_compute_packed_b(
                a,
                p.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
                false,
                b.kc,
                b.row_block,
            ),
            Panels::F16(p) => matmul::gemm_compute_packed_b_f16(
                a,
                p.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
                false,
                b.kc,
                b.row_block,
            ),
        }
        Ok(out)
    }

    /// Planned backward: `g · W` using cached panels — bit-identical to
    /// [`Tensor::matmul`] against the original weight. Packs the
    /// backward orientation of `weight` on first use (`weight` must be
    /// the same tensor/generation this plan was built from; the caller
    /// checks the version before dispatching here).
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors if `g` is not `[N, out]` or `weight`
    /// does not match the planned shape.
    pub fn matmul_nn(&mut self, g: &Tensor, weight: &Tensor) -> Result<Tensor> {
        if g.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: g.rank(),
                op: "GemmPlan::matmul_nn",
            });
        }
        if g.dims()[1] != self.out_features || weight.dims() != [self.out_features, self.in_features] {
            return Err(TensorError::ShapeMismatch {
                lhs: g.shape().clone(),
                rhs: weight.shape().clone(),
                op: "GemmPlan::matmul_nn",
            });
        }
        let (m, k, n) = (g.dims()[0], self.out_features, self.in_features);
        if self.bwd.is_none() {
            // Logical B of g·W is W itself: strides (in, 1). Packed at
            // the *plan's* precision, not the current global, so both
            // orientations of one plan always agree.
            self.bwd = Some(pack_b_panels(weight.as_slice(), n, 1, k, n, self.precision));
        }
        let _span = medsplit_telemetry::span("gemm");
        let b = choose_blocking(PlanKind::DenseBwd, m, k, n);
        let mut out = Tensor::zeros([m, n]);
        let a = PanelsA::Strided {
            src: g.as_slice(),
            rs: k,
            cs: 1,
        };
        match self.bwd.as_ref().expect("bwd panels just built") {
            Panels::F32(p) => matmul::gemm_compute_packed_b(
                a,
                p.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
                false,
                b.kc,
                b.row_block,
            ),
            Panels::F16(p) => matmul::gemm_compute_packed_b_f16(
                a,
                p.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
                false,
                b.kc,
                b.row_block,
            ),
        }
        Ok(out)
    }
}

/// The im2col geometry shared by a conv plan's forward and backward
/// passes — computed once per input size, never re-derived independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input height this geometry was derived for.
    pub h: usize,
    /// Input width this geometry was derived for.
    pub w: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
    /// Filter-matrix depth: `in_channels * kernel_h * kernel_w`.
    pub rows: usize,
    /// Output pixels per image: `oh * ow`.
    pub ncols: usize,
}

/// A cached execution plan for a conv layer's `OIHW` filter.
///
/// Owns the `[O, C*KH*KW]` filter matrix prepacked as microkernel
/// A-panels for the forward GEMM, the lazily-built transposed panels for
/// the backward `dcols = Wᵀ·G` GEMM, and the cached [`ConvGeometry`].
#[derive(Debug)]
pub struct ConvPlan {
    spec: Conv2dSpec,
    out_channels: usize,
    in_channels: usize,
    /// Filter-matrix depth `in_channels * kernel_h * kernel_w`.
    rows: usize,
    /// Forward A-panels of `wmat` (`[o, rows]`, strides `(rows, 1)`).
    fwd: Panels,
    /// Backward A-panels of `wmatᵀ` (strides `(1, rows)`); built on
    /// first backward.
    bwd: Option<Panels>,
    /// Storage precision both panel sets were packed at.
    precision: WeightPrecision,
    /// Geometry for the most recent input size (conv inputs are
    /// uniformly sized in practice; a size change just recomputes).
    geo: Option<ConvGeometry>,
    generation: u64,
}

impl ConvPlan {
    /// Packs `weight` (`OIHW`, kernel dims matching `spec`) for the
    /// forward conv GEMM, tagging the plan with `generation`.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors if `weight` is not `OIHW` with `spec`'s
    /// kernel size.
    pub fn pack(weight: &Tensor, spec: Conv2dSpec, generation: u64) -> Result<ConvPlan> {
        Self::pack_at(weight, spec, generation, weight_precision())
    }

    /// [`pack`](Self::pack) at an explicit storage precision, ignoring
    /// the process-global setting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`pack`](Self::pack).
    pub fn pack_at(
        weight: &Tensor,
        spec: Conv2dSpec,
        generation: u64,
        precision: WeightPrecision,
    ) -> Result<ConvPlan> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: weight.rank(),
                op: "ConvPlan::pack",
            });
        }
        let d = weight.dims();
        if d[2] != spec.kernel_h || d[3] != spec.kernel_w {
            return Err(TensorError::ShapeMismatch {
                lhs: weight.shape().clone(),
                rhs: crate::shape::Shape::from([d[0], d[1], spec.kernel_h, spec.kernel_w]),
                op: "ConvPlan::pack",
            });
        }
        let (out_channels, in_channels) = (d[0], d[1]);
        let rows = in_channels * spec.kernel_h * spec.kernel_w;
        // OIHW weights viewed in place as the [o, rows] filter matrix.
        let fwd = pack_a_panels(weight.as_slice(), rows, 1, out_channels, rows, precision);
        Ok(ConvPlan {
            spec,
            out_channels,
            in_channels,
            rows,
            fwd,
            bwd: None,
            precision,
            geo: None,
            generation,
        })
    }

    /// Returns the plan in `slot` if its generation matches, otherwise
    /// (re)packs `weight`. Counts hits/misses/invalidations like
    /// [`GemmPlan::ensure`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::pack`] shape errors.
    pub fn ensure<'a>(
        slot: &'a mut Option<ConvPlan>,
        weight: &Tensor,
        spec: Conv2dSpec,
        generation: u64,
    ) -> Result<&'a mut ConvPlan> {
        match slot.as_ref() {
            Some(p) if p.generation == generation && p.spec == spec && p.precision == weight_precision() => {
                note_hit()
            }
            stale => {
                if stale.is_some() {
                    note_invalidation();
                } else {
                    note_miss();
                }
                *slot = Some(ConvPlan::pack(weight, spec, generation)?);
            }
        }
        Ok(slot.as_mut().expect("slot was just ensured"))
    }

    /// The weight version this plan packed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The storage precision this plan's panels were packed at.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// The convolution hyper-parameters this plan was built for.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// The im2col geometry for an `h×w` input, cached so forward and
    /// backward share one derivation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Numerical`] if the window does not fit.
    pub fn geometry(&mut self, h: usize, w: usize) -> Result<ConvGeometry> {
        if let Some(g) = self.geo {
            if g.h == h && g.w == w {
                return Ok(g);
            }
        }
        let (oh, ow) = self.spec.output_hw(h, w)?;
        let g = ConvGeometry {
            h,
            w,
            oh,
            ow,
            rows: self.rows,
            ncols: oh * ow,
        };
        self.geo = Some(g);
        Ok(g)
    }

    /// The prepacked forward A-panels (filter matrix), in whichever
    /// storage precision the plan packed.
    pub(crate) fn fwd_panels(&self) -> PanelsA<'_> {
        self.fwd.as_panels_a()
    }

    /// The prepacked backward A-panels (transposed filter matrix),
    /// building them from `wmat` (the `[o, rows]` filter matrix slice)
    /// on first use — at the plan's own precision, so forward and
    /// backward always agree.
    pub(crate) fn bwd_panels(&mut self, wmat: &[f32]) -> PanelsA<'_> {
        if self.bwd.is_none() {
            // Logical A of Wᵀ·G is wmatᵀ [rows, o]: strides (1, rows).
            self.bwd = Some(pack_a_panels(
                wmat,
                1,
                self.rows,
                self.rows,
                self.out_channels,
                self.precision,
            ));
        }
        self.bwd.as_ref().expect("bwd panels just built").as_panels_a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seed: u32, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h % 1999) as f32) / 250.0 - 4.0
            })
            .collect()
    }

    #[test]
    fn blocking_is_deterministic_and_shaped() {
        let a = choose_blocking(PlanKind::DenseFwd, 64, 256, 1024);
        let b = choose_blocking(PlanKind::DenseFwd, 64, 256, 1024);
        assert_eq!(a, b);
        assert_eq!(a.mr, MR);
        assert_eq!(a.nr, NR);
        assert_eq!(a.kc, 256); // k <= cap: single balanced block
        assert_eq!(a.nc, 1024);
        assert_eq!(a.row_block % MR, 0);
        // Large k splits into balanced blocks under the cap.
        let c = choose_blocking(PlanKind::DenseFwd, 8, 1000, 64);
        assert!(c.kc <= KC_CAP);
        assert_eq!(1000_usize.div_ceil(c.kc), 1000_usize.div_ceil(KC_CAP));
        // Tiny m still gets a legal row block.
        let d = choose_blocking(PlanKind::DenseFwd, 1, 8, 8);
        assert_eq!(d.row_block, MR);
    }

    #[test]
    fn picks_are_recorded_once_per_shape() {
        let _ = choose_blocking(PlanKind::ConvFwd, 13, 77, 131);
        let _ = choose_blocking(PlanKind::ConvFwd, 13, 77, 131);
        let picks = recorded_picks();
        let hits: Vec<_> = picks
            .iter()
            .filter(|(k, _)| k == "conv_fwd m13 k77 n131")
            .collect();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn gemm_plan_matches_direct_paths() {
        let _g = PREC_LOCK.lock().unwrap();
        let (m, k, n) = (7, 33, 19);
        let w = Tensor::from_vec(mk(1, n * k), [n, k]).unwrap();
        let x = Tensor::from_vec(mk(2, m * k), [m, k]).unwrap();
        let g = Tensor::from_vec(mk(3, m * n), [m, n]).unwrap();
        let mut slot = None;
        let plan = GemmPlan::ensure(&mut slot, &w, 1).unwrap();
        assert_eq!(plan.generation(), 1);
        let y = plan.matmul_nt(&x).unwrap();
        assert_eq!(y, x.matmul_nt(&w).unwrap());
        let dx = plan.matmul_nn(&g, &w).unwrap();
        assert_eq!(dx, g.matmul(&w).unwrap());
    }

    #[test]
    fn ensure_counts_hits_misses_invalidations() {
        let _g = PREC_LOCK.lock().unwrap();
        let w = Tensor::from_vec(mk(4, 12), [3, 4]).unwrap();
        let mut slot = None;
        let before = stats();
        GemmPlan::ensure(&mut slot, &w, 1).unwrap();
        GemmPlan::ensure(&mut slot, &w, 1).unwrap();
        GemmPlan::ensure(&mut slot, &w, 2).unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.invalidations - before.invalidations, 1);
        assert!(after.packs - before.packs >= 2);
        assert!(after.pack_bytes > 0);
    }

    #[test]
    fn plan_shape_validation() {
        let w = Tensor::ones([4, 3]);
        let plan = GemmPlan::pack_nt(&w, 0).unwrap();
        assert!(plan.matmul_nt(&Tensor::ones([2, 5])).is_err());
        assert!(plan.matmul_nt(&Tensor::ones([6])).is_err());
        assert!(GemmPlan::pack_nt(&Tensor::ones([3]), 0).is_err());
        let spec = Conv2dSpec::square(3, 1, 1);
        assert!(ConvPlan::pack(&Tensor::ones([2, 2]), spec, 0).is_err());
        assert!(ConvPlan::pack(&Tensor::ones([2, 1, 5, 5]), spec, 0).is_err());
    }

    /// Serialises tests that flip the process-global weight precision.
    static PREC_LOCK: Mutex<()> = Mutex::new(());

    /// `t` with every element round-tripped through binary16 — the f32
    /// tensor an f16-storage plan is numerically equivalent to.
    fn narrowed(t: &Tensor) -> Tensor {
        let v: Vec<f32> = t
            .as_slice()
            .iter()
            .map(|&x| crate::half::f16_bits_to_f32(crate::half::f32_to_f16_bits(x)))
            .collect();
        Tensor::from_vec(v, [t.dims()[0], t.dims()[1]]).unwrap()
    }

    #[test]
    fn f16_gemm_plan_matches_f32_gemm_on_narrowed_weights() {
        // Widening f16 panel bits is exact, so the f16-storage plan must
        // equal the plain f32 GEMM against the f16-rounded weights — to
        // the bit, in both orientations.
        let (m, k, n) = (7, 33, 19);
        let w = Tensor::from_vec(mk(11, n * k), [n, k]).unwrap();
        let x = Tensor::from_vec(mk(12, m * k), [m, k]).unwrap();
        let g = Tensor::from_vec(mk(13, m * n), [m, n]).unwrap();
        let w16 = narrowed(&w);
        let mut plan = GemmPlan::pack_nt_at(&w, 1, WeightPrecision::F16).unwrap();
        assert_eq!(plan.precision(), WeightPrecision::F16);
        assert_eq!(plan.matmul_nt(&x).unwrap(), x.matmul_nt(&w16).unwrap());
        assert_eq!(plan.matmul_nn(&g, &w).unwrap(), g.matmul(&w16).unwrap());
    }

    #[test]
    fn f16_conv_plan_matches_narrowed_weight_conv() {
        use crate::ops::conv::{
            conv2d_backward, conv2d_backward_planned, conv2d_forward, conv2d_forward_planned,
        };
        let spec = Conv2dSpec::square(3, 1, 1);
        let (n, c, h, w, o) = (2usize, 3usize, 6usize, 5usize, 4usize);
        let input = Tensor::from_vec(mk(21, n * c * h * w), [n, c, h, w]).unwrap();
        let weight = Tensor::from_vec(mk(22, o * c * 9), [o, c, 3, 3]).unwrap();
        let bias = Tensor::from_vec(mk(23, o), [o]).unwrap();
        let w16 = Tensor::from_vec(
            weight
                .as_slice()
                .iter()
                .map(|&x| crate::half::f16_bits_to_f32(crate::half::f32_to_f16_bits(x)))
                .collect(),
            [o, c, 3, 3],
        )
        .unwrap();

        let mut plan = ConvPlan::pack_at(&weight, spec, 1, WeightPrecision::F16).unwrap();
        assert_eq!(plan.precision(), WeightPrecision::F16);
        let y = conv2d_forward_planned(&input, &mut plan, Some(&bias)).unwrap();
        assert_eq!(y, conv2d_forward(&input, &w16, Some(&bias), spec).unwrap());

        let gout = Tensor::from_vec(mk(24, y.numel()), [n, o, h, w]).unwrap();
        let (dx, dw, db) = conv2d_backward_planned(&input, &weight, &gout, &mut plan).unwrap();
        // dcols = Wᵀ·G streams the f16 panels → matches the narrowed
        // weight; dW = G·colsᵀ and db never touch W → match either.
        let (dx_ref, dw_ref, db_ref) = conv2d_backward(&input, &w16, &gout, spec).unwrap();
        assert_eq!(dx, dx_ref);
        assert_eq!(dw, dw_ref);
        assert_eq!(db, db_ref);
    }

    #[test]
    fn f16_plans_bit_identical_across_isas() {
        // The acceptance bar for the f16 kernel family: scalar reference
        // and the host's native ISA produce identical bits for both
        // orientations of an f16-storage plan (safe to interleave with
        // other tests — every ISA is bit-identical by contract, so a
        // concurrent dispatch flip cannot change any test's results).
        let (m, k, n) = (13, 40, 35);
        let w = Tensor::from_vec(mk(41, n * k), [n, k]).unwrap();
        let x = Tensor::from_vec(mk(42, m * k), [m, k]).unwrap();
        let g = Tensor::from_vec(mk(43, m * n), [m, n]).unwrap();
        let mut plan = GemmPlan::pack_nt_at(&w, 1, WeightPrecision::F16).unwrap();
        let host = crate::simd::detect();
        assert!(crate::simd::set_isa(crate::simd::Isa::Scalar));
        let y_s = plan.matmul_nt(&x).unwrap();
        let dx_s = plan.matmul_nn(&g, &w).unwrap();
        assert!(crate::simd::set_isa(host));
        let y_n = plan.matmul_nt(&x).unwrap();
        let dx_n = plan.matmul_nn(&g, &w).unwrap();
        let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&y_s), bits(&y_n), "forward f16 GEMM diverged across ISAs");
        assert_eq!(bits(&dx_s), bits(&dx_n), "backward f16 GEMM diverged across ISAs");
    }

    #[test]
    fn precision_switch_invalidates_plans() {
        let _g = PREC_LOCK.lock().unwrap();
        set_weight_precision(WeightPrecision::F32);
        let w = Tensor::from_vec(mk(31, 12), [3, 4]).unwrap();
        let mut slot = None;
        GemmPlan::ensure(&mut slot, &w, 7).unwrap();
        assert_eq!(slot.as_ref().unwrap().precision(), WeightPrecision::F32);
        set_weight_precision(WeightPrecision::F16);
        // Same generation, new precision: ensure must repack.
        let plan = GemmPlan::ensure(&mut slot, &w, 7).unwrap();
        assert_eq!(plan.precision(), WeightPrecision::F16);
        assert_eq!(plan.generation(), 7);
        set_weight_precision(WeightPrecision::F32);
        let plan = GemmPlan::ensure(&mut slot, &w, 7).unwrap();
        assert_eq!(plan.precision(), WeightPrecision::F32);
    }

    #[test]
    fn f16_panels_halve_pack_bytes() {
        let _g = PREC_LOCK.lock().unwrap();
        let w = Tensor::ones([64, 64]);
        let before = stats().pack_bytes;
        let p32 = GemmPlan::pack_nt_at(&w, 0, WeightPrecision::F32).unwrap();
        let f32_bytes = stats().pack_bytes - before;
        let mid = stats().pack_bytes;
        let p16 = GemmPlan::pack_nt_at(&w, 0, WeightPrecision::F16).unwrap();
        let f16_bytes = stats().pack_bytes - mid;
        assert_eq!(f16_bytes * 2, f32_bytes);
        drop(p16);
        drop(p32);
        assert_eq!(stats().pack_bytes, before);
    }

    #[test]
    fn pack_bytes_released_on_drop() {
        let _g = PREC_LOCK.lock().unwrap();
        let before = stats().pack_bytes;
        let w = Tensor::ones([64, 64]);
        let plan = GemmPlan::pack_nt(&w, 0).unwrap();
        assert!(stats().pack_bytes >= before + 64 * 64 * 4);
        drop(plan);
        assert_eq!(stats().pack_bytes, before);
    }

    #[test]
    fn conv_geometry_is_cached() {
        let spec = Conv2dSpec::square(3, 1, 1);
        let w = Tensor::ones([2, 3, 3, 3]);
        let mut plan = ConvPlan::pack(&w, spec, 0).unwrap();
        let g1 = plan.geometry(8, 8).unwrap();
        assert_eq!((g1.oh, g1.ow), (8, 8));
        assert_eq!(g1.rows, 3 * 9);
        assert_eq!(plan.geometry(8, 8).unwrap(), g1);
        let g2 = plan.geometry(5, 5).unwrap();
        assert_eq!((g2.oh, g2.ow), (5, 5));
        assert!(plan.geometry(0, 0).is_err());
    }
}
