//! 2-D convolution via im2col / col2im, with forward and backward kernels.
//!
//! Layout conventions (matching the rest of the workspace):
//! - inputs/activations: `NCHW` — `[batch, channels, height, width]`
//! - filters: `OIHW` — `[out_channels, in_channels, kernel_h, kernel_w]`
//!
//! Forward pass lowers each input image to a `[C*KH*KW, OH*OW]` column
//! matrix and multiplies by the `[O, C*KH*KW]` filter matrix; the backward
//! pass reuses the same lowering for both the weight gradient (a `A·Bᵀ`
//! GEMM with the columns) and the input gradient (a `Aᵀ·B` GEMM followed
//! by `col2im`).
//!
//! Both passes are parallelised over the batch axis (per image forward,
//! per fixed 4-image chunk backward) and draw every temporary — column
//! matrices, GEMM pack buffers — from the thread-local scratch arena
//! ([`crate::scratch`]), so steady-state training performs zero scratch
//! heap allocations per step. The backward pass reduces per-chunk weight
//! and bias partials in ascending chunk order; because the chunking is
//! fixed (never derived from the thread count), results are identical
//! for every `MEDSPLIT_THREADS` value.
//!
//! All three lowered GEMMs run on the register-blocked, ISA-dispatched
//! microkernels in [`crate::ops::matmul`] (AVX2+FMA / NEON / portable),
//! so the convolution inherits both the SIMD throughput and the
//! bit-identical-across-`MEDSPLIT_ISA` guarantee of the GEMM path.

use crate::error::{Result, TensorError};
use crate::ops::matmul::{self, gemm_into, gemm_nt_into, gemm_tn_into};
use crate::ops::microkernel::NR;
use crate::ops::plan::{choose_blocking, ConvPlan, PlanKind};
use crate::pool;
use crate::scratch;
use crate::tensor::Tensor;

/// Images per backward-pass work chunk. Fixed so that the partial-sum
/// reduction order (and therefore every gradient bit) is independent of
/// the pool size.
const BWD_CHUNK: usize = 4;

/// Hyper-parameters of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride: usize,
    /// Zero padding applied symmetrically to all four borders.
    pub padding: usize,
}

impl Conv2dSpec {
    /// A square kernel with the given size, stride and padding.
    pub fn square(kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dSpec {
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Numerical`] if the window does not fit.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < self.kernel_h || pw < self.kernel_w || self.stride == 0 {
            return Err(TensorError::Numerical(format!(
                "conv window {}x{} stride {} does not fit input {}x{} (pad {})",
                self.kernel_h, self.kernel_w, self.stride, h, w, self.padding
            )));
        }
        Ok((
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        ))
    }
}

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.rank(),
            op,
        });
    }
    let d = t.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Lowers one image (`[C, H, W]` slice of a batch) into a column matrix of
/// shape `[C*KH*KW, OH*OW]`, written into `cols`.
#[allow(clippy::too_many_arguments)]
fn im2col_single(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let ncols = oh * ow;
    let pad = spec.padding as isize;
    let mut row = 0usize;
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let dst = &mut cols[row * ncols..(row + 1) * ncols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + kh as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        for _ in 0..ow {
                            dst[col] = 0.0;
                            col += 1;
                        }
                        continue;
                    }
                    let src_row = &img_ch[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kw as isize - pad;
                        dst[col] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatters a column matrix back into an image, accumulating overlaps —
/// the adjoint of [`im2col_single`].
#[allow(clippy::too_many_arguments)]
fn col2im_single(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    img: &mut [f32],
) {
    let ncols = oh * ow;
    let pad = spec.padding as isize;
    let mut row = 0usize;
    for ch in 0..c {
        let img_ch = &mut img[ch * h * w..(ch + 1) * h * w];
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let src = &cols[row * ncols..(row + 1) * ncols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + kh as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        col += ow;
                        continue;
                    }
                    let base = iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kw as isize - pad;
                        if ix >= 0 && ix < w as isize {
                            img_ch[base + ix as usize] += src[col];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Lowers a whole `NCHW` batch to a `[N, C*KH*KW, OH*OW]`-shaped tensor
/// (returned flattened to rank 3).
///
/// # Errors
///
/// Returns shape errors for non-4-D inputs or non-fitting windows.
pub fn im2col(input: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "im2col")?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let rows = c * spec.kernel_h * spec.kernel_w;
    let ncols = oh * ow;
    let mut out = Tensor::zeros([n, rows, ncols]);
    let src = input.as_slice();
    pool::parallel_chunks_mut(out.as_mut_slice(), rows * ncols, |i, dst| {
        im2col_single(
            &src[i * c * h * w..(i + 1) * c * h * w],
            c,
            h,
            w,
            spec,
            oh,
            ow,
            dst,
        );
    });
    Ok(out)
}

/// Forward 2-D convolution.
///
/// `input` is `NCHW`, `weight` is `OIHW`, `bias` (optional) has length `O`.
/// Returns `[N, O, OH, OW]`.
///
/// # Errors
///
/// Returns shape errors if dimensions are inconsistent.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "conv2d_forward")?;
    let (o, ci, kh, kw) = check_nchw(weight, "conv2d_forward(weight)")?;
    if ci != c || kh != spec.kernel_h || kw != spec.kernel_w {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
            op: "conv2d_forward",
        });
    }
    if let Some(b) = bias {
        if b.numel() != o {
            return Err(TensorError::LengthMismatch {
                expected: o,
                actual: b.numel(),
            });
        }
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let _span = medsplit_telemetry::span("conv_fwd");
    let rows = c * kh * kw;
    let ncols = oh * ow;
    // OIHW weights are row-major, so the `[O, C*KH*KW]` filter matrix is
    // the weight buffer viewed in place — no reshape copy.
    let wmat = weight.as_slice();
    let mut out = Tensor::zeros([n, o, oh, ow]);
    let src = input.as_slice();
    let bias = bias.map(Tensor::as_slice);
    pool::parallel_chunks_mut(out.as_mut_slice(), o * ncols, |i, dst| {
        scratch::with_f32(rows * ncols, |cols| {
            im2col_single(
                &src[i * c * h * w..(i + 1) * c * h * w],
                c,
                h,
                w,
                spec,
                oh,
                ow,
                cols,
            );
            gemm_into(wmat, cols, dst, o, rows, ncols);
        });
        if let Some(b) = bias {
            for (oc, &bv) in b.iter().enumerate() {
                for v in &mut dst[oc * ncols..(oc + 1) * ncols] {
                    *v += bv;
                }
            }
        }
    });
    Ok(out)
}

/// Gathers one NR-wide tile of output pixels directly into microkernel
/// B-tile order: `tile[p*NR + jr]` is im2col row `p` at output pixel
/// `j0+jr` (zero for padding reads and past `cols`). Byte-identical to
/// materializing the full `cols` matrix with [`im2col_single`] and then
/// packing it with the GEMM's B-tile packer — the fused path just never
/// builds the intermediate.
#[allow(clippy::too_many_arguments)]
fn pack_patch_tile(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    ow: usize,
    j0: usize,
    cols: usize,
    tile: &mut [f32],
) {
    let pad = spec.padding as isize;
    // Hoist the per-pixel coordinate math out of the row loop: the tile's
    // output pixels are fixed, so their top-left input coordinates are
    // computed once and each im2col row only adds its (kh, kw) offset.
    let mut iy0 = [0isize; NR];
    let mut ix0 = [0isize; NR];
    for jr in 0..cols {
        let j = j0 + jr;
        iy0[jr] = ((j / ow) * spec.stride) as isize - pad;
        ix0[jr] = ((j % ow) * spec.stride) as isize - pad;
    }
    let mut p = 0usize;
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let dst = &mut tile[p * NR..(p + 1) * NR];
                for (jr, v) in dst.iter_mut().enumerate().take(cols) {
                    let iy = iy0[jr] + kh as isize;
                    let ix = ix0[jr] + kw as isize;
                    *v = if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                        0.0
                    } else {
                        img_ch[iy as usize * w + ix as usize]
                    };
                }
                dst[cols..].fill(0.0);
                p += 1;
            }
        }
    }
}

/// Planned forward 2-D convolution: the plan's prepacked filter panels ×
/// patch tiles gathered straight into packed B order.
///
/// The fused lowering never materializes the `[C*KH*KW, OH*OW]` column
/// matrix: each NR-wide tile of output pixels is gathered directly into
/// a `kc×nc` pack tile in the scratch arena, halving the per-image
/// scratch footprint and skipping one full write+read of the columns.
/// Bit-identical to [`conv2d_forward`] with the plan's weight (see
/// [`pack_patch_tile`]).
///
/// # Errors
///
/// Returns shape errors if `input`/`bias` are inconsistent with the plan.
pub fn conv2d_forward_planned(input: &Tensor, plan: &mut ConvPlan, bias: Option<&Tensor>) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "conv2d_forward")?;
    let o = plan.out_channels();
    if c != plan.in_channels() {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().clone(),
            rhs: crate::shape::Shape::from([
                o,
                plan.in_channels(),
                plan.spec().kernel_h,
                plan.spec().kernel_w,
            ]),
            op: "conv2d_forward",
        });
    }
    if let Some(b) = bias {
        if b.numel() != o {
            return Err(TensorError::LengthMismatch {
                expected: o,
                actual: b.numel(),
            });
        }
    }
    let geo = plan.geometry(h, w)?;
    let _span = medsplit_telemetry::span("conv_fwd");
    let spec = plan.spec();
    let (rows, ncols) = (geo.rows, geo.ncols);
    let nt = ncols.div_ceil(NR);
    let blocking = choose_blocking(PlanKind::ConvFwd, o, rows, ncols);
    let wpack = plan.fwd_panels();
    let mut out = Tensor::zeros([n, o, geo.oh, geo.ow]);
    let src = input.as_slice();
    let bias = bias.map(Tensor::as_slice);
    pool::parallel_chunks_mut(out.as_mut_slice(), o * ncols, |i, dst| {
        let img = &src[i * c * h * w..(i + 1) * c * h * w];
        scratch::with_f32(nt * rows * NR, |bpack| {
            for (jt, tile) in bpack.chunks_exact_mut(rows * NR).enumerate() {
                let j0 = jt * NR;
                pack_patch_tile(img, c, h, w, spec, geo.ow, j0, NR.min(ncols - j0), tile);
            }
            matmul::gemm_compute_packed_b(
                wpack,
                bpack,
                dst,
                o,
                rows,
                ncols,
                true,
                blocking.kc,
                blocking.row_block,
            );
        });
        if let Some(b) = bias {
            for (oc, &bv) in b.iter().enumerate() {
                for v in &mut dst[oc * ncols..(oc + 1) * ncols] {
                    *v += bv;
                }
            }
        }
    });
    Ok(out)
}

/// Gradients of a 2-D convolution.
///
/// Given the upstream gradient `grad_out` (`[N, O, OH, OW]`), returns
/// `(grad_input, grad_weight, grad_bias)`.
///
/// # Errors
///
/// Returns shape errors if dimensions are inconsistent with the forward
/// pass.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(input, "conv2d_backward")?;
    let (o, _ci, kh, kw) = check_nchw(weight, "conv2d_backward(weight)")?;
    let (gn, go, goh, gow) = check_nchw(grad_out, "conv2d_backward(grad)")?;
    let (oh, ow) = spec.output_hw(h, w)?;
    if gn != n || go != o || goh != oh || gow != ow {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: input.shape().clone(),
            op: "conv2d_backward",
        });
    }
    let _span = medsplit_telemetry::span("conv_bwd");
    let rows = c * kh * kw;
    let ncols = oh * ow;
    let wmat = weight.as_slice();
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    let mut grad_weight = Tensor::zeros([o, c, kh, kw]);
    let mut grad_bias = Tensor::zeros([o]);
    let src = input.as_slice();
    let g = grad_out.as_slice();
    // Each fixed-size image chunk accumulates weight/bias partials into
    // its own region of `partials` while scattering input gradients
    // directly into its (disjoint) slice of `grad_input`; the partials
    // are then reduced sequentially in chunk order below, keeping the
    // result independent of the pool size.
    let pstride = o * rows + o;
    let nchunks = n.div_ceil(BWD_CHUNK);
    let mut partials = vec![0.0f32; nchunks * pstride];
    let gi = pool::RawSliceMut::new(grad_input.as_mut_slice());
    pool::parallel_chunks_mut(&mut partials, pstride, |chunk_idx, partial| {
        let (gw_part, gb_part) = partial.split_at_mut(o * rows);
        let lo = chunk_idx * BWD_CHUNK;
        let hi = (lo + BWD_CHUNK).min(n);
        for i in lo..hi {
            let gmat = &g[i * o * ncols..(i + 1) * o * ncols];
            scratch::with_f32(rows * ncols, |cols| {
                im2col_single(
                    &src[i * c * h * w..(i + 1) * c * h * w],
                    c,
                    h,
                    w,
                    spec,
                    oh,
                    ow,
                    cols,
                );
                // dW += G · colsᵀ
                gemm_nt_into(gmat, cols, gw_part, o, rows, ncols, true);
                // dcols = Wᵀ · G, then scatter back to image space.
                scratch::with_f32(rows * ncols, |dcols| {
                    dcols.fill(0.0);
                    gemm_tn_into(wmat, gmat, dcols, o, rows, ncols);
                    // SAFETY: image `i` belongs to exactly one chunk, so
                    // the reborrowed region is exclusive to this task.
                    let img = unsafe { gi.slice(i * c * h * w, (i + 1) * c * h * w) };
                    col2im_single(dcols, c, h, w, spec, oh, ow, img);
                });
            });
            // db += row sums of G
            for (oc, gb) in gb_part.iter_mut().enumerate() {
                *gb += gmat[oc * ncols..(oc + 1) * ncols].iter().sum::<f32>();
            }
        }
    });
    for chunk in partials.chunks_exact(pstride) {
        let (gw_part, gb_part) = chunk.split_at(o * rows);
        for (dst, &v) in grad_weight.as_mut_slice().iter_mut().zip(gw_part) {
            *dst += v;
        }
        for (dst, &v) in grad_bias.as_mut_slice().iter_mut().zip(gb_part) {
            *dst += v;
        }
    }
    Ok((grad_input, grad_weight, grad_bias))
}

/// Planned gradients of a 2-D convolution: identical math and reduction
/// order to [`conv2d_backward`], but the im2col geometry comes from the
/// plan (shared with the forward pass, computed once) and the
/// `dcols = Wᵀ·G` GEMM streams the plan's cached transposed filter
/// panels instead of re-packing the weight per image chunk.
///
/// `weight` must be the tensor the plan packed (the layer checks the
/// version before dispatching here); it is still needed directly for the
/// weight-gradient GEMM and the lazy transposed-panel build.
///
/// # Errors
///
/// Returns shape errors if dimensions are inconsistent with the plan.
pub fn conv2d_backward_planned(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    plan: &mut ConvPlan,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(input, "conv2d_backward")?;
    let (o, ci, kh, kw) = check_nchw(weight, "conv2d_backward(weight)")?;
    let (gn, go, goh, gow) = check_nchw(grad_out, "conv2d_backward(grad)")?;
    if c != plan.in_channels() || o != plan.out_channels() || ci != c {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
            op: "conv2d_backward",
        });
    }
    let geo = plan.geometry(h, w)?;
    if gn != n || go != o || goh != geo.oh || gow != geo.ow {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: input.shape().clone(),
            op: "conv2d_backward",
        });
    }
    let _span = medsplit_telemetry::span("conv_bwd");
    let spec = plan.spec();
    let (rows, ncols, oh, ow) = (geo.rows, geo.ncols, geo.oh, geo.ow);
    let blocking = choose_blocking(PlanKind::ConvBwd, rows, o, ncols);
    let wmat = weight.as_slice();
    let wpack_t = plan.bwd_panels(wmat);
    let mut grad_input = Tensor::zeros([n, c, h, w]);
    let mut grad_weight = Tensor::zeros([o, c, kh, kw]);
    let mut grad_bias = Tensor::zeros([o]);
    let src = input.as_slice();
    let g = grad_out.as_slice();
    // Same fixed-chunk partial-sum scheme as the unplanned path: the
    // reduction order (ascending chunk index) never depends on the pool
    // size, so gradients stay bit-identical across thread counts.
    let pstride = o * rows + o;
    let nchunks = n.div_ceil(BWD_CHUNK);
    let mut partials = vec![0.0f32; nchunks * pstride];
    let gi = pool::RawSliceMut::new(grad_input.as_mut_slice());
    pool::parallel_chunks_mut(&mut partials, pstride, |chunk_idx, partial| {
        let (gw_part, gb_part) = partial.split_at_mut(o * rows);
        let lo = chunk_idx * BWD_CHUNK;
        let hi = (lo + BWD_CHUNK).min(n);
        for i in lo..hi {
            let gmat = &g[i * o * ncols..(i + 1) * o * ncols];
            scratch::with_f32(rows * ncols, |cols| {
                im2col_single(
                    &src[i * c * h * w..(i + 1) * c * h * w],
                    c,
                    h,
                    w,
                    spec,
                    oh,
                    ow,
                    cols,
                );
                // dW += G · colsᵀ
                gemm_nt_into(gmat, cols, gw_part, o, rows, ncols, true);
                // dcols = Wᵀ · G from the cached transposed panels.
                scratch::with_f32(rows * ncols, |dcols| {
                    dcols.fill(0.0);
                    matmul::gemm_prepacked_a(
                        wpack_t,
                        gmat,
                        ncols,
                        1,
                        dcols,
                        rows,
                        o,
                        ncols,
                        true,
                        blocking.kc,
                        blocking.row_block,
                    );
                    // SAFETY: image `i` belongs to exactly one chunk, so
                    // the reborrowed region is exclusive to this task.
                    let img = unsafe { gi.slice(i * c * h * w, (i + 1) * c * h * w) };
                    col2im_single(dcols, c, h, w, spec, oh, ow, img);
                });
            });
            // db += row sums of G
            for (oc, gb) in gb_part.iter_mut().enumerate() {
                *gb += gmat[oc * ncols..(oc + 1) * ncols].iter().sum::<f32>();
            }
        }
    });
    for chunk in partials.chunks_exact(pstride) {
        let (gw_part, gb_part) = chunk.split_at(o * rows);
        for (dst, &v) in grad_weight.as_mut_slice().iter_mut().zip(gw_part) {
            *dst += v;
        }
        for (dst, &v) in grad_bias.as_mut_slice().iter_mut().zip(gb_part) {
            *dst += v;
        }
    }
    Ok((grad_input, grad_weight, grad_bias))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_input() -> Tensor {
        // 1 image, 1 channel, 3x3: values 1..9
        Tensor::from_vec((1..=9).map(|v| v as f32).collect(), [1, 1, 3, 3]).unwrap()
    }

    #[test]
    fn spec_output_sizes() {
        let s = Conv2dSpec::square(3, 1, 1);
        assert_eq!(s.output_hw(32, 32).unwrap(), (32, 32));
        let s2 = Conv2dSpec::square(2, 2, 0);
        assert_eq!(s2.output_hw(32, 32).unwrap(), (16, 16));
        assert!(Conv2dSpec::square(5, 1, 0).output_hw(3, 3).is_err());
        assert!(Conv2dSpec {
            kernel_h: 1,
            kernel_w: 1,
            stride: 0,
            padding: 0
        }
        .output_hw(3, 3)
        .is_err());
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let input = simple_input();
        // 1x1 kernel with weight 1.0 == identity.
        let weight = Tensor::ones([1, 1, 1, 1]);
        let out = conv2d_forward(&input, &weight, None, Conv2dSpec::square(1, 1, 0)).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        let input = simple_input();
        let weight = Tensor::ones([1, 1, 3, 3]);
        // 3x3 all-ones kernel, valid conv -> sum of all 9 elements = 45.
        let out = conv2d_forward(&input, &weight, None, Conv2dSpec::square(3, 1, 0)).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.item(), 45.0);
        // With padding 1 the centre output stays 45.
        let padded = conv2d_forward(&input, &weight, None, Conv2dSpec::square(3, 1, 1)).unwrap();
        assert_eq!(padded.dims(), &[1, 1, 3, 3]);
        assert_eq!(padded.get(&[0, 0, 1, 1]).unwrap(), 45.0);
        // Corner output sums the 2x2 top-left block.
        assert_eq!(padded.get(&[0, 0, 0, 0]).unwrap(), 1.0 + 2.0 + 4.0 + 5.0);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let input = simple_input();
        let weight = Tensor::zeros([2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], [2]).unwrap();
        let out = conv2d_forward(&input, &weight, Some(&bias), Conv2dSpec::square(1, 1, 0)).unwrap();
        assert!(out.slice0(0, 1).unwrap().as_slice()[..9]
            .iter()
            .all(|&v| v == 1.5));
        assert!(out.as_slice()[9..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn forward_shape_checks() {
        let input = simple_input();
        let bad_weight = Tensor::ones([1, 2, 3, 3]); // wrong in-channels
        assert!(conv2d_forward(&input, &bad_weight, None, Conv2dSpec::square(3, 1, 0)).is_err());
        let bad_bias = Tensor::ones([3]);
        let weight = Tensor::ones([1, 1, 3, 3]);
        assert!(conv2d_forward(&input, &weight, Some(&bad_bias), Conv2dSpec::square(3, 1, 0)).is_err());
    }

    #[test]
    fn im2col_shapes_and_content() {
        let input = simple_input();
        let cols = im2col(&input, Conv2dSpec::square(2, 1, 0)).unwrap();
        // rows = 1*2*2 = 4, ncols = 2*2 = 4
        assert_eq!(cols.dims(), &[1, 4, 4]);
        // First row of the column matrix is the top-left value of each window.
        assert_eq!(&cols.as_slice()[0..4], &[1.0, 2.0, 4.0, 5.0]);
    }

    /// Numerical gradient check of the full conv backward pass.
    #[test]
    fn backward_matches_numerical_gradients() {
        let spec = Conv2dSpec::square(3, 1, 1);
        let n = 2;
        let (c, h, w) = (2, 4, 4);
        let o = 3;
        let mk = |seed: u32, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32) / 500.0 - 1.0
                })
                .collect()
        };
        let input = Tensor::from_vec(mk(1, n * c * h * w), [n, c, h, w]).unwrap();
        let weight = Tensor::from_vec(mk(2, o * c * 9), [o, c, 3, 3]).unwrap();
        let bias = Tensor::from_vec(mk(3, o), [o]).unwrap();

        // Loss = sum(output * seedmask) so dL/doutput = seedmask.
        let out = conv2d_forward(&input, &weight, Some(&bias), spec).unwrap();
        let mask = Tensor::from_vec(mk(4, out.numel()), out.shape().clone()).unwrap();
        let loss = |inp: &Tensor, wt: &Tensor, b: &Tensor| -> f32 {
            conv2d_forward(inp, wt, Some(b), spec)
                .unwrap()
                .dot(&mask)
                .unwrap()
        };

        let (gi, gw, gb) = conv2d_backward(&input, &weight, &mask, spec).unwrap();

        let eps = 1e-2;
        // Spot-check several coordinates of each gradient.
        for &idx in &[0usize, 7, 19, n * c * h * w - 1] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let num = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            let ana = gi.as_slice()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "grad_input[{idx}]: num {num} vs ana {ana}"
            );
        }
        for &idx in &[0usize, 5, o * c * 9 - 1] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "grad_weight[{idx}]: num {num} vs ana {ana}"
            );
        }
        for idx in 0..o {
            let mut bp = bias.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = bias.clone();
            bm.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * eps);
            let ana = gb.as_slice()[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "grad_bias[{idx}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn backward_shape_checks() {
        let input = simple_input();
        let weight = Tensor::ones([1, 1, 3, 3]);
        let wrong_grad = Tensor::ones([1, 1, 2, 2]);
        assert!(conv2d_backward(&input, &weight, &wrong_grad, Conv2dSpec::square(3, 1, 0)).is_err());
    }

    #[test]
    fn strided_convolution_shape() {
        let input = Tensor::zeros([2, 3, 8, 8]);
        let weight = Tensor::zeros([4, 3, 3, 3]);
        let out = conv2d_forward(&input, &weight, None, Conv2dSpec::square(3, 2, 1)).unwrap();
        assert_eq!(out.dims(), &[2, 4, 4, 4]);
    }
}
