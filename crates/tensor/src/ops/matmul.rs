//! Matrix multiplication kernels.
//!
//! The implementation is a cache-blocked, `k`-inner-loop triple loop over
//! contiguous row-major buffers. It is not BLAS, but the loop order
//! (`i`, `k`, `j` with the `j` loop innermost over contiguous memory) lets
//! the compiler auto-vectorise, which is fast enough to train the scaled
//! CIFAR-family models of the evaluation on CPU.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Block size for the cache-blocked kernel, in elements.
const BLOCK: usize = 64;

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// `C = A · B` for row-major matrices, writing into a zeroed output buffer.
fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let k_end = (kb + BLOCK).min(k);
            for i in ib..i_end {
                let c_row = &mut c[i * n..(i + 1) * n];
                for p in kb..k_end {
                    let aval = a[i * k + p];
                    if aval == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aval * bv;
                    }
                }
            }
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
    /// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    ///
    /// ```
    /// use medsplit_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::eye(2);
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok::<(), medsplit_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = check_matrix(self, "matmul")?;
        let (k2, n) = check_matrix(other, "matmul")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul",
            });
        }
        let mut out = Tensor::zeros([m, n]);
        gemm(self.as_slice(), other.as_slice(), out.as_mut_slice(), m, k1, n);
        Ok(out)
    }

    /// `Aᵀ · B` without materialising the transpose of `A`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matmul`](Self::matmul), with the inner dimension
    /// being `A`'s rows.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k1, m) = check_matrix(self, "matmul_tn")?;
        let (k2, n) = check_matrix(other, "matmul_tn")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul_tn",
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Tensor::zeros([m, n]);
        let c = out.as_mut_slice();
        for p in 0..k1 {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// `A · Bᵀ` without materialising the transpose of `B`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matmul`](Self::matmul), with the inner dimension
    /// being `B`'s columns.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = check_matrix(self, "matmul_nt")?;
        let (n, k2) = check_matrix(other, "matmul_nt")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul_nt",
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Tensor::zeros([m, n]);
        let c = out.as_mut_slice();
        for i in 0..m {
            let a_row = &a[i * k1..(i + 1) * k1];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k1..(j + 1) * k1];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
        Ok(out)
    }

    /// Matrix–vector product of a rank-2 tensor and a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors for invalid inputs.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = check_matrix(self, "matvec")?;
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
                op: "matvec",
            });
        }
        if v.numel() != k {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: v.shape().clone(),
                op: "matvec",
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = Tensor::zeros([m]);
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&av, &xv)| av * xv).sum();
        }
        Ok(out)
    }

    /// Outer product of two rank-1 tensors: `out[i, j] = a[i] * b[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-vector inputs.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || other.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: self.rank().max(other.rank()),
                op: "outer",
            });
        }
        let (m, n) = (self.numel(), other.numel());
        let mut out = Tensor::zeros([m, n]);
        let c = out.as_mut_slice();
        for (i, &av) in self.as_slice().iter().enumerate() {
            for (j, &bv) in other.as_slice().iter().enumerate() {
                c[i * n + j] = av * bv;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::ones([3]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), [4, 3]).unwrap();
        let b = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.5).collect(), [4, 2]).unwrap();
        let direct = a.transpose().unwrap().matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        assert!(direct.allclose(&fused, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) - 3.0).collect(), [4, 3]).unwrap();
        let direct = a.matmul(&b.transpose().unwrap()).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        assert!(direct.allclose(&fused, 1e-5));
    }

    #[test]
    fn matvec_and_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap();
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[3.0, 7.0]);
        assert!(a.matvec(&Tensor::ones([3])).is_err());

        let u = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(a.outer(&v).is_err());
    }

    #[test]
    fn blocked_kernel_matches_naive_on_larger_sizes() {
        // Exceed BLOCK to exercise the blocking logic.
        let m = 70;
        let k = 65;
        let n = 72;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i * 37 % 101) as f32) / 50.0 - 1.0).collect(),
            [m, k],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i * 53 % 97) as f32) / 40.0 - 1.2).collect(),
            [k, n],
        )
        .unwrap();
        let c = a.matmul(&b).unwrap();
        // Naive reference for a few spot positions.
        for &(i, j) in &[(0, 0), (m - 1, n - 1), (35, 41), (17, 3)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            let got = c.as_slice()[i * n + j];
            assert!((acc - got).abs() < 1e-2, "mismatch at ({i},{j}): {acc} vs {got}");
        }
    }
}
