//! Matrix multiplication kernels: packed, cache-blocked, multi-threaded.
//!
//! All three GEMM variants decompose the output into fixed 64-row panels
//! that the worker pool ([`crate::pool`]) distributes over threads; the
//! panel size never depends on the thread count and each panel writes a
//! disjoint output region, so results are **bit-identical for every
//! `MEDSPLIT_THREADS` value** (including the single-thread fallback,
//! which matches the original sequential kernel bit-for-bit — per output
//! element the inner dimension is accumulated in ascending order exactly
//! as before).
//!
//! Within a panel the kernels are cache-blocked over the inner dimension
//! (`KC`) and, for wide outputs, over columns (`NC`), with the active
//! `B`-strip packed into a thread-local scratch buffer
//! ([`crate::scratch`]) so the innermost loops stream contiguous memory.
//! `matmul_tn` packs the transposed `A`-panel the same way, turning its
//! stride-`m` column walks into unit-stride loads. The inner loops carry
//! no data-dependent branches (the historical `aval == 0.0` skip defeated
//! auto-vectorisation on dense activations and was removed).

use crate::error::{Result, TensorError};
use crate::pool;
use crate::scratch;
use crate::tensor::Tensor;

/// Output row-panel height: the unit of parallel work distribution.
/// Fixed (never derived from the thread count) to keep results
/// bit-identical across pool sizes.
const BLOCK: usize = 64;
/// Cache block over the inner (`k`) dimension.
const KC: usize = 128;
/// Column-strip width above which the active `B` strip is packed.
const NC: usize = 512;

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// `crow[..] += aval * brow[..]` — the shared vectorisable inner loop.
#[inline(always)]
fn axpy_row(crow: &mut [f32], aval: f32, brow: &[f32]) {
    for (cv, &bv) in crow.iter_mut().zip(brow) {
        *cv += aval * bv;
    }
}

/// `C += A · B` over one row panel (`rows` rows of `A`/`C` starting at
/// global row `i0`), cache-blocked and packed. `C` must be zeroed by the
/// caller (or hold a partial sum to accumulate onto).
fn gemm_panel(a: &[f32], b: &[f32], c_panel: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    if n > NC {
        // Wide output: pack the active KC×NC strip of B so the inner loop
        // streams one cache-resident buffer.
        scratch::with_f32(KC * NC, |pack| {
            for kb in (0..k).step_by(KC) {
                let kc = (k - kb).min(KC);
                for jb in (0..n).step_by(NC) {
                    let nc = (n - jb).min(NC);
                    for p in 0..kc {
                        let src = (kb + p) * n + jb;
                        pack[p * nc..(p + 1) * nc].copy_from_slice(&b[src..src + nc]);
                    }
                    for ii in 0..rows {
                        let arow = &a[(i0 + ii) * k + kb..(i0 + ii) * k + kb + kc];
                        let crow = &mut c_panel[ii * n + jb..ii * n + jb + nc];
                        for (p, &aval) in arow.iter().enumerate() {
                            axpy_row(crow, aval, &pack[p * nc..(p + 1) * nc]);
                        }
                    }
                }
            }
        });
    } else {
        // Narrow output: B rows are short and already contiguous.
        for kb in (0..k).step_by(KC) {
            let kc = (k - kb).min(KC);
            for ii in 0..rows {
                let arow = &a[(i0 + ii) * k + kb..(i0 + ii) * k + kb + kc];
                let crow = &mut c_panel[ii * n..(ii + 1) * n];
                for (p, &aval) in arow.iter().enumerate() {
                    axpy_row(crow, aval, &b[(kb + p) * n..(kb + p + 1) * n]);
                }
            }
        }
    }
}

/// `C = A · B` for row-major buffers; `c` must be zeroed.
/// Parallelised over 64-row output panels.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    pool::parallel_chunks_mut(c, BLOCK * n.max(1), |pi, panel| {
        let rows = panel.len() / n.max(1);
        gemm_panel(a, b, panel, pi * BLOCK, rows, k, n);
    });
}

/// `C = Aᵀ · B` with `a` stored `[k, m]`; `c` (`[m, n]`) must be zeroed.
/// The transposed `A` panel is packed into scratch so the inner loops are
/// unit-stride despite the column walk.
pub(crate) fn gemm_tn_into(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    pool::parallel_chunks_mut(c, BLOCK * n.max(1), |pi, panel| {
        let i0 = pi * BLOCK;
        let rows = panel.len() / n.max(1);
        scratch::with_f32(BLOCK * KC, |packa| {
            for kb in (0..k).step_by(KC) {
                let kc = (k - kb).min(KC);
                // packa[ii * kc + p] = a[(kb + p) * m + i0 + ii]:
                // sequential reads along A's rows, cache-resident writes.
                for p in 0..kc {
                    let arow = &a[(kb + p) * m + i0..(kb + p) * m + i0 + rows];
                    for (ii, &av) in arow.iter().enumerate() {
                        packa[ii * kc + p] = av;
                    }
                }
                for ii in 0..rows {
                    let arow = &packa[ii * kc..ii * kc + kc];
                    let crow = &mut panel[ii * n..(ii + 1) * n];
                    for (p, &aval) in arow.iter().enumerate() {
                        axpy_row(crow, aval, &b[(kb + p) * n..(kb + p + 1) * n]);
                    }
                }
            }
        });
    });
}

/// `C = A · Bᵀ` (or `C += A · Bᵀ` when `accumulate`) with `b` stored
/// `[n, k]`. Each output element is an independent dot product, so the
/// panels need no packing — both operand rows are already contiguous.
pub(crate) fn gemm_nt_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    pool::parallel_chunks_mut(c, BLOCK * n.max(1), |pi, panel| {
        let i0 = pi * BLOCK;
        let rows = panel.len() / n.max(1);
        for ii in 0..rows {
            let arow = &a[(i0 + ii) * k..(i0 + ii) * k + k];
            let crow = &mut panel[ii * n..(ii + 1) * n];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                if accumulate {
                    *cv += acc;
                } else {
                    *cv = acc;
                }
            }
        }
    });
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
    /// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    ///
    /// ```
    /// use medsplit_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::eye(2);
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok::<(), medsplit_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = check_matrix(self, "matmul")?;
        let (k2, n) = check_matrix(other, "matmul")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul",
            });
        }
        let _span = medsplit_telemetry::span("gemm");
        let mut out = Tensor::zeros([m, n]);
        gemm_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), m, k1, n);
        Ok(out)
    }

    /// `Aᵀ · B` without materialising the transpose of `A`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matmul`](Self::matmul), with the inner dimension
    /// being `A`'s rows.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k1, m) = check_matrix(self, "matmul_tn")?;
        let (k2, n) = check_matrix(other, "matmul_tn")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul_tn",
            });
        }
        let _span = medsplit_telemetry::span("gemm");
        let mut out = Tensor::zeros([m, n]);
        gemm_tn_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), k1, m, n);
        Ok(out)
    }

    /// `A · Bᵀ` without materialising the transpose of `B`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matmul`](Self::matmul), with the inner dimension
    /// being `B`'s columns.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = check_matrix(self, "matmul_nt")?;
        let (n, k2) = check_matrix(other, "matmul_nt")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul_nt",
            });
        }
        let _span = medsplit_telemetry::span("gemm");
        let mut out = Tensor::zeros([m, n]);
        gemm_nt_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            n,
            k1,
            false,
        );
        Ok(out)
    }

    /// Matrix–vector product of a rank-2 tensor and a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors for invalid inputs.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = check_matrix(self, "matvec")?;
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
                op: "matvec",
            });
        }
        if v.numel() != k {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: v.shape().clone(),
                op: "matvec",
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = Tensor::zeros([m]);
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&av, &xv)| av * xv).sum();
        }
        Ok(out)
    }

    /// Outer product of two rank-1 tensors: `out[i, j] = a[i] * b[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-vector inputs.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || other.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: self.rank().max(other.rank()),
                op: "outer",
            });
        }
        let (m, n) = (self.numel(), other.numel());
        let mut out = Tensor::zeros([m, n]);
        let c = out.as_mut_slice();
        for (i, &av) in self.as_slice().iter().enumerate() {
            for (j, &bv) in other.as_slice().iter().enumerate() {
                c[i * n + j] = av * bv;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::ones([3]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), [4, 3]).unwrap();
        let b = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.5).collect(), [4, 2]).unwrap();
        let direct = a.transpose().unwrap().matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        assert!(direct.allclose(&fused, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) - 3.0).collect(), [4, 3]).unwrap();
        let direct = a.matmul(&b.transpose().unwrap()).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        assert!(direct.allclose(&fused, 1e-5));
    }

    #[test]
    fn matvec_and_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap();
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[3.0, 7.0]);
        assert!(a.matvec(&Tensor::ones([3])).is_err());

        let u = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(a.outer(&v).is_err());
    }

    #[test]
    fn blocked_kernel_matches_naive_on_larger_sizes() {
        // Exceed BLOCK and KC to exercise panelling and k-blocking.
        let m = 70;
        let k = 150;
        let n = 72;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i * 37 % 101) as f32) / 50.0 - 1.0).collect(),
            [m, k],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i * 53 % 97) as f32) / 40.0 - 1.2).collect(),
            [k, n],
        )
        .unwrap();
        let c = a.matmul(&b).unwrap();
        // Naive reference for a few spot positions.
        for &(i, j) in &[(0, 0), (m - 1, n - 1), (35, 41), (17, 3)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            let got = c.as_slice()[i * n + j];
            assert!((acc - got).abs() < 1e-2, "mismatch at ({i},{j}): {acc} vs {got}");
        }
    }

    #[test]
    fn wide_output_takes_the_packed_path() {
        // n > NC forces the B-strip packing branch; compare against the
        // narrow-path result computed column-block by column-block.
        let (m, k, n) = (3, 33, NC + 17);
        let mk = |seed: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| ((i.wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32) / 499.0 - 1.0)
                .collect()
        };
        let a = Tensor::from_vec(mk(1, m * k), [m, k]).unwrap();
        let b = Tensor::from_vec(mk(2, k * n), [k, n]).unwrap();
        let c = a.matmul(&b).unwrap();
        for &(i, j) in &[(0, 0), (2, n - 1), (1, NC), (2, NC - 1)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            assert!((acc - c.as_slice()[i * n + j]).abs() < 1e-3, "({i},{j})");
        }
    }
}
