//! Matrix multiplication: packed, register-blocked, multi-threaded.
//!
//! All three GEMM variants (`C = A·B`, `Aᵀ·B`, `A·Bᵀ`) run through one
//! strided driver:
//!
//! 1. **Whole-B pack** — B is packed once per call into microkernel
//!    order ([`microkernel::NR`]-wide column tiles, depth-major within a
//!    tile) in a 64-byte-aligned scratch buffer, in parallel over tiles.
//!    Every row panel then reuses the same packed B, so packing cost is
//!    amortised over all of `m` (the old per-strip scheme repacked B for
//!    every panel, which sank small-`m`/large-`n` shapes).
//! 2. **Row panels** — the output is split into fixed [`BLOCK`]-row
//!    panels distributed over the worker pool ([`crate::pool`]). The
//!    panel size never depends on the thread count and each panel writes
//!    a disjoint output region, so results are **bit-identical for every
//!    `MEDSPLIT_THREADS` value**.
//! 3. **Microkernel** — within a panel, [`microkernel::MR`]-row blocks
//!    of A are packed and streamed through the register-blocked tile
//!    kernel selected by [`crate::simd::active_isa`] (AVX2+FMA, NEON, or
//!    the portable reference). The inner (`k`) dimension is blocked by
//!    [`kc_block`] — sized from the shape, not a constant, so no shape
//!    pays for a mis-fitted panel. Edge tiles stage through an on-stack
//!    `MR×NR` buffer so every path runs the identical kernel.
//!
//! Per output element the math is a fused multiply-add per depth step in
//! ascending `k` order on every ISA (see [`microkernel`]), so outputs
//! are also bit-identical across `MEDSPLIT_ISA` settings. Splitting `k`
//! into blocks does not change that order: the partial sum parked in `C`
//! between blocks is the same `f32` the register held.

use crate::error::{Result, TensorError};
use crate::ops::microkernel::{self, MR, NR};
use crate::pool;
use crate::scratch;
use crate::tensor::Tensor;

/// Output row-panel height: the unit of parallel work distribution.
/// Fixed (never derived from the thread count) to keep results
/// bit-identical across pool sizes; a multiple of [`MR`] so only the
/// final panel sees partial row blocks.
pub(crate) const BLOCK: usize = 11 * MR; // 66

/// Upper bound on the inner-dimension block: `kc·NR` floats of packed B
/// plus `kc·MR` of packed A stay comfortably inside a 32 KiB L1 at 320.
const KC_MAX: usize = 320;

/// Inner-dimension block size for depth `k`: the smallest even split of
/// `k` whose blocks fit [`KC_MAX`]. Balanced blocks (e.g. `512 → 256`,
/// not `320 + 192`) keep per-block work uniform; deriving the size from
/// the shape fixed the small-`m`/large-`k` shapes the old constant
/// mis-sized.
pub(crate) fn kc_block(k: usize) -> usize {
    debug_assert!(k > 0);
    k.div_ceil(k.div_ceil(KC_MAX))
}

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// How the compute driver obtains each MR-row panel of the logical A
/// operand.
#[derive(Clone, Copy)]
pub(crate) enum PanelsA<'a> {
    /// Read A through `(row, col)` strides, packing each MR block into a
    /// per-task scratch panel (the classic per-call path).
    Strided { src: &'a [f32], rs: usize, cs: usize },
    /// A was prepacked by a plan ([`crate::ops::plan`]):
    /// `m.div_ceil(MR)` consecutive `k*MR` panels, MR-major within a
    /// depth step, zero-padded past row `m` — byte-identical to what
    /// [`microkernel::pack_a_panel`] produces.
    Packed(&'a [f32]),
    /// A was prepacked by a plan in **binary16 storage** (same panel
    /// layout as [`Packed`](Self::Packed), each element narrowed by
    /// [`microkernel::pack_a_panel_f16`]). The driver widens each panel
    /// to `f32` scratch before streaming it — the conversion is exact,
    /// so the result equals running the f32 path on the f16-rounded
    /// weights, bit-identically on every ISA.
    PackedF16(&'a [u16]),
}

/// Widens a `k*MR` binary16 A-panel into `dst` (exact conversion).
fn widen_a_panel(src: &[u16], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &bits) in dst.iter_mut().zip(src) {
        *d = crate::half::f16_bits_to_f32(bits);
    }
}

/// The kb/jt tile loops over one MR-row block: streams the packed A
/// panel (`ap_all`, `k*MR` floats) and the whole packed B (`bpack`,
/// `nt*k*NR`) through the register kernel. Shared verbatim by the
/// per-call path and the plan-cached paths, so both produce identical
/// per-element operation sequences — the bit-identity contract.
#[allow(clippy::too_many_arguments)]
fn compute_row_block(
    kernel: microkernel::TileKernel,
    ap_all: &[f32],
    bpack: &[f32],
    panel: &mut [f32],
    ib: usize,
    mr: usize,
    k: usize,
    n: usize,
    nt: usize,
    kc: usize,
) {
    for kb in (0..k).step_by(kc) {
        let kcur = (k - kb).min(kc);
        let ap = ap_all[kb * MR..].as_ptr();
        for jt in 0..nt {
            let j0 = jt * NR;
            let cols = NR.min(n - j0);
            let bp = bpack[jt * k * NR + kb * NR..].as_ptr();
            if mr == MR && cols == NR {
                // SAFETY: the full MR×NR tile at `panel[ib*n + j0]` with
                // row stride `n` is in bounds; packs are sized `k*MR` /
                // `k*NR` past the `kb` offsets; `bp` is 64-byte aligned
                // (pack buffers come from the aligned scratch arena or a
                // plan's aligned panel store, and `NR` floats are a whole
                // cache line); `kernel` came from `tile_kernel()` so the
                // ISA is available.
                unsafe { kernel(kcur, ap, bp, panel.as_mut_ptr().add(ib * n + j0), n) };
            } else {
                // Edge tile: stage through a full MR×NR buffer (valid C
                // in the live region, zeros elsewhere; the packs are
                // zero-padded so dead lanes accumulate 0) and run the
                // identical kernel — same per-element op order as
                // interior tiles.
                let mut stage = [0.0f32; MR * NR];
                for (r, srow) in stage.chunks_exact_mut(NR).enumerate().take(mr) {
                    let co = (ib + r) * n + j0;
                    srow[..cols].copy_from_slice(&panel[co..co + cols]);
                }
                // SAFETY: `stage` is a full MR×NR tile with ldc = NR;
                // pack bounds as above. (The AVX2 kernel loads B aligned;
                // the stage buffer is only ever C.)
                unsafe { kernel(kcur, ap, bp, stage.as_mut_ptr(), NR) };
                for (r, srow) in stage.chunks_exact(NR).enumerate().take(mr) {
                    let co = (ib + r) * n + j0;
                    panel[co..co + cols].copy_from_slice(&srow[..cols]);
                }
            }
        }
    }
}

/// The compute half of the GEMM driver: C row panels × prepacked B.
///
/// `bpack` must hold `n.div_ceil(NR)` tiles of `k*NR` floats in
/// microkernel order (64-byte aligned), exactly as
/// [`microkernel::pack_b_tile`] lays them out. `row_block` (a multiple
/// of [`MR`]) is the parallel work unit; it never affects results — each
/// output element always streams the full `k` range in ascending order
/// through the same fused kernel, so any `row_block`/`kc` choice is
/// bit-identical (the partial sum parked in C between `kc` blocks is the
/// same `f32` the register held).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_compute_packed_b(
    a: PanelsA<'_>,
    bpack: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    kc: usize,
    row_block: usize,
) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(row_block >= MR && row_block.is_multiple_of(MR));
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let kernel = microkernel::tile_kernel();
    let nt = n.div_ceil(NR);
    debug_assert_eq!(bpack.len(), nt * k * NR);
    pool::parallel_chunks_mut(c, row_block * n, |pi, panel| {
        let i0 = pi * row_block;
        let rows = panel.len() / n;
        if !accumulate {
            panel.fill(0.0);
        }
        match a {
            PanelsA::Strided { src, rs, cs } => scratch::with_f32(k * MR, |apack| {
                for ib in (0..rows).step_by(MR) {
                    let mr = (rows - ib).min(MR);
                    microkernel::pack_a_panel(src, rs, cs, i0 + ib, mr, k, apack);
                    compute_row_block(kernel, apack, bpack, panel, ib, mr, k, n, nt, kc);
                }
            }),
            PanelsA::Packed(panels) => {
                for ib in (0..rows).step_by(MR) {
                    let mr = (rows - ib).min(MR);
                    let panel_a = &panels[((i0 + ib) / MR) * k * MR..][..k * MR];
                    compute_row_block(kernel, panel_a, bpack, panel, ib, mr, k, n, nt, kc);
                }
            }
            PanelsA::PackedF16(panels) => scratch::with_f32(k * MR, |apack| {
                for ib in (0..rows).step_by(MR) {
                    let mr = (rows - ib).min(MR);
                    widen_a_panel(&panels[((i0 + ib) / MR) * k * MR..][..k * MR], apack);
                    compute_row_block(kernel, apack, bpack, panel, ib, mr, k, n, nt, kc);
                }
            }),
        }
    });
}

/// The kb/jt tile loops over one MR-row block against an **f16-storage**
/// packed B (`nt*k*NR` half-words): the f16 counterpart of
/// [`compute_row_block`], streaming the same panels through the
/// [`microkernel::TileKernelF16`] family. Per-element op order is
/// identical — each B lane is widened exactly, then fused-multiply-added
/// in ascending depth order.
#[allow(clippy::too_many_arguments)]
fn compute_row_block_f16(
    kernel: microkernel::TileKernelF16,
    ap_all: &[f32],
    bpack: &[u16],
    panel: &mut [f32],
    ib: usize,
    mr: usize,
    k: usize,
    n: usize,
    nt: usize,
    kc: usize,
) {
    for kb in (0..k).step_by(kc) {
        let kcur = (k - kb).min(kc);
        let ap = ap_all[kb * MR..].as_ptr();
        for jt in 0..nt {
            let j0 = jt * NR;
            let cols = NR.min(n - j0);
            let bp = bpack[jt * k * NR + kb * NR..].as_ptr();
            if mr == MR && cols == NR {
                // SAFETY: same bounds argument as `compute_row_block`;
                // `bp` offsets are whole NR-half-word (32-byte) steps
                // from a 64-byte-aligned plan store, satisfying the AVX2
                // kernel's 16-byte-aligned B loads; `kernel` came from
                // `tile_kernel_f16()` so the ISA (and F16C) is available.
                unsafe { kernel(kcur, ap, bp, panel.as_mut_ptr().add(ib * n + j0), n) };
            } else {
                let mut stage = [0.0f32; MR * NR];
                for (r, srow) in stage.chunks_exact_mut(NR).enumerate().take(mr) {
                    let co = (ib + r) * n + j0;
                    srow[..cols].copy_from_slice(&panel[co..co + cols]);
                }
                // SAFETY: `stage` is a full MR×NR tile with ldc = NR;
                // pack bounds as above.
                unsafe { kernel(kcur, ap, bp, stage.as_mut_ptr(), NR) };
                for (r, srow) in stage.chunks_exact(NR).enumerate().take(mr) {
                    let co = (ib + r) * n + j0;
                    panel[co..co + cols].copy_from_slice(&srow[..cols]);
                }
            }
        }
    }
}

/// The compute half of the GEMM driver against an **f16-storage**
/// prepacked B: `bpack` holds `n.div_ceil(NR)` tiles of `k*NR` binary16
/// half-words as laid out by [`microkernel::pack_b_tile_f16`] (64-byte
/// aligned). Everything else matches [`gemm_compute_packed_b`]; results
/// are bit-identical across ISAs, thread counts, and blocking picks for
/// the same packed bits.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_compute_packed_b_f16(
    a: PanelsA<'_>,
    bpack: &[u16],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    kc: usize,
    row_block: usize,
) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(row_block >= MR && row_block.is_multiple_of(MR));
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let kernel = microkernel::tile_kernel_f16();
    let nt = n.div_ceil(NR);
    debug_assert_eq!(bpack.len(), nt * k * NR);
    pool::parallel_chunks_mut(c, row_block * n, |pi, panel| {
        let i0 = pi * row_block;
        let rows = panel.len() / n;
        if !accumulate {
            panel.fill(0.0);
        }
        match a {
            PanelsA::Strided { src, rs, cs } => scratch::with_f32(k * MR, |apack| {
                for ib in (0..rows).step_by(MR) {
                    let mr = (rows - ib).min(MR);
                    microkernel::pack_a_panel(src, rs, cs, i0 + ib, mr, k, apack);
                    compute_row_block_f16(kernel, apack, bpack, panel, ib, mr, k, n, nt, kc);
                }
            }),
            PanelsA::Packed(panels) => {
                for ib in (0..rows).step_by(MR) {
                    let mr = (rows - ib).min(MR);
                    let panel_a = &panels[((i0 + ib) / MR) * k * MR..][..k * MR];
                    compute_row_block_f16(kernel, panel_a, bpack, panel, ib, mr, k, n, nt, kc);
                }
            }
            PanelsA::PackedF16(panels) => scratch::with_f32(k * MR, |apack| {
                for ib in (0..rows).step_by(MR) {
                    let mr = (rows - ib).min(MR);
                    widen_a_panel(&panels[((i0 + ib) / MR) * k * MR..][..k * MR], apack);
                    compute_row_block_f16(kernel, apack, bpack, panel, ib, mr, k, n, nt, kc);
                }
            }),
        }
    });
}

/// Packs B (read through strides) into microkernel tile order inside a
/// scratch buffer and runs the compute driver with a prepacked A panel
/// set — the backward half of a conv plan (cached `Wᵀ` panels, in either
/// storage precision, × fresh per-step gradients).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_prepacked_a(
    a: PanelsA<'_>,
    b: &[f32],
    brs: usize,
    bcs: usize,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    kc: usize,
    row_block: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        gemm_compute_packed_b(a, &[], c, m, k, n, accumulate, kc, row_block);
        return;
    }
    let nt = n.div_ceil(NR);
    scratch::with_f32(nt * k * NR, |bpack| {
        pool::parallel_chunks_mut(bpack, k * NR, |jt, tile| {
            let j0 = jt * NR;
            microkernel::pack_b_tile(b, brs, bcs, j0, NR.min(n - j0), k, tile);
        });
        gemm_compute_packed_b(a, bpack, c, m, k, n, accumulate, kc, row_block);
    });
}

/// The shared GEMM driver: `C (+)= opA(A) · opB(B)` where the logical
/// operands are described by row/column strides into the stored buffers
/// (`(k, 1)`/`(n, 1)` for untransposed row-major A/B; `(1, m)`/`(1, k)`
/// for transposed). When `accumulate` is false each output panel is
/// zeroed first; otherwise C must hold the partial sum to extend.
#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    a: &[f32],
    ars: usize,
    acs: usize,
    b: &[f32],
    brs: usize,
    bcs: usize,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let nt = n.div_ceil(NR);
    let kc = kc_block(k);
    scratch::with_f32(nt * k * NR, |bpack| {
        // Pack all of B once, in parallel over NR-wide column tiles.
        // Tile `jt` occupies `bpack[jt*k*NR ..][.. k*NR]`, depth-major,
        // zero-padded past column `n`; every `kb*NR` offset is 64-byte
        // aligned (NR floats = one cache line), which the AVX2 kernel's
        // aligned B loads rely on.
        pool::parallel_chunks_mut(bpack, k * NR, |jt, tile| {
            let j0 = jt * NR;
            microkernel::pack_b_tile(b, brs, bcs, j0, NR.min(n - j0), k, tile);
        });
        gemm_compute_packed_b(
            PanelsA::Strided {
                src: a,
                rs: ars,
                cs: acs,
            },
            bpack,
            c,
            m,
            k,
            n,
            accumulate,
            kc,
            BLOCK,
        );
    });
}

/// `C += A · B` for row-major buffers; `c` must be zeroed (or hold a
/// partial sum to accumulate onto). Parallelised over row panels.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_strided(a, k, 1, b, n, 1, c, m, k, n, true);
}

/// `C += Aᵀ · B` with `a` stored `[k, m]`; `c` (`[m, n]`) must be zeroed
/// (or hold a partial sum). The strided packing reads Aᵀ in place — no
/// transpose is materialised.
pub(crate) fn gemm_tn_into(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_strided(a, 1, m, b, n, 1, c, m, k, n, true);
}

/// `C = A · Bᵀ` (or `C += A · Bᵀ` when `accumulate`) with `b` stored
/// `[n, k]`. The strided packing reads Bᵀ in place.
pub(crate) fn gemm_nt_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    gemm_strided(a, k, 1, b, 1, k, c, m, k, n, accumulate);
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
    /// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    ///
    /// ```
    /// use medsplit_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let i = Tensor::eye(2);
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok::<(), medsplit_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = check_matrix(self, "matmul")?;
        let (k2, n) = check_matrix(other, "matmul")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul",
            });
        }
        let _span = medsplit_telemetry::span("gemm");
        let mut out = Tensor::zeros([m, n]);
        gemm_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), m, k1, n);
        Ok(out)
    }

    /// `Aᵀ · B` without materialising the transpose of `A`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matmul`](Self::matmul), with the inner dimension
    /// being `A`'s rows.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k1, m) = check_matrix(self, "matmul_tn")?;
        let (k2, n) = check_matrix(other, "matmul_tn")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul_tn",
            });
        }
        let _span = medsplit_telemetry::span("gemm");
        let mut out = Tensor::zeros([m, n]);
        gemm_tn_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), k1, m, n);
        Ok(out)
    }

    /// `A · Bᵀ` without materialising the transpose of `B`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`matmul`](Self::matmul), with the inner dimension
    /// being `B`'s columns.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k1) = check_matrix(self, "matmul_nt")?;
        let (n, k2) = check_matrix(other, "matmul_nt")?;
        if k1 != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "matmul_nt",
            });
        }
        let _span = medsplit_telemetry::span("gemm");
        let mut out = Tensor::zeros([m, n]);
        gemm_nt_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            n,
            k1,
            false,
        );
        Ok(out)
    }

    /// Matrix–vector product of a rank-2 tensor and a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors for invalid inputs.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = check_matrix(self, "matvec")?;
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
                op: "matvec",
            });
        }
        if v.numel() != k {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: v.shape().clone(),
                op: "matvec",
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = Tensor::zeros([m]);
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&av, &xv)| av * xv).sum();
        }
        Ok(out)
    }

    /// Outer product of two rank-1 tensors: `out[i, j] = a[i] * b[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-vector inputs.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || other.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: self.rank().max(other.rank()),
                op: "outer",
            });
        }
        let (m, n) = (self.numel(), other.numel());
        let mut out = Tensor::zeros([m, n]);
        let c = out.as_mut_slice();
        for (i, &av) in self.as_slice().iter().enumerate() {
            for (j, &bv) in other.as_slice().iter().enumerate() {
                c[i * n + j] = av * bv;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(Tensor::ones([3]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), [4, 3]).unwrap();
        let b = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.5).collect(), [4, 2]).unwrap();
        let direct = a.transpose().unwrap().matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        assert!(direct.allclose(&fused, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) - 3.0).collect(), [4, 3]).unwrap();
        let direct = a.matmul(&b.transpose().unwrap()).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        assert!(direct.allclose(&fused, 1e-5));
    }

    #[test]
    fn matvec_and_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap();
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[3.0, 7.0]);
        assert!(a.matvec(&Tensor::ones([3])).is_err());

        let u = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(a.outer(&v).is_err());
    }

    #[test]
    fn kc_blocks_are_balanced_and_bounded() {
        for k in [1usize, 5, 64, 320, 321, 512, 784, 1024, 5000] {
            let kc = kc_block(k);
            assert!((1..=KC_MAX).contains(&kc), "kc_block({k}) = {kc}");
            // Balanced: uses exactly as many blocks as the cap requires.
            assert_eq!(k.div_ceil(kc), k.div_ceil(KC_MAX), "kc_block({k}) = {kc}");
            // And no block is more than one step larger than the last.
            let last = k - (k.div_ceil(kc) - 1) * kc;
            assert!(kc - last < kc.max(2), "degenerate trailing block for k={k}");
        }
        assert_eq!(kc_block(512), 256);
    }

    fn pseudo(seed: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i.wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32) / 499.0 - 1.0)
            .collect()
    }

    /// Per-element fused reference: ascending-`k` `mul_add` — the exact
    /// op sequence every kernel path (interior, edge-staged, any KC
    /// split, any ISA) must reproduce bit-for-bit.
    fn fused_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc = a[i * k + p].mul_add(b[p * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn gemm_bit_matches_fused_reference() {
        // Shapes chosen to hit: edge row blocks (m % MR != 0), edge
        // column tiles (n % NR != 0), multiple row panels (m > BLOCK),
        // multiple KC blocks (k > KC_MAX), and tiny everything.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 5),
            (MR, 7, NR),
            (MR + 1, 7, NR + 1),
            (70, 150, 72),
            (BLOCK + 5, KC_MAX + 9, 2 * NR + 3),
        ] {
            let a = pseudo(m * 31 + 1, m * k);
            let b = pseudo(n * 17 + 2, k * n);
            let expect = fused_reference(&a, &b, m, k, n);
            let mut c = vec![0.0f32; m * n];
            gemm_into(&a, &b, &mut c, m, k, n);
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "gemm ({m}x{k}x{n}) diverged from the fused reference"
            );
        }
    }

    #[test]
    fn gemm_variants_agree_with_nn_layouts() {
        let (m, k, n) = (13usize, 37usize, 21usize);
        let a = pseudo(3, m * k);
        let b = pseudo(4, k * n);
        let expect = fused_reference(&a, &b, m, k, n);

        // TN: store A as [k, m] (the transpose of `a`).
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_tn_into(&at, &b, &mut c, k, m, n);
        assert_eq!(c, expect, "gemm_tn");

        // NT: store B as [n, k] (the transpose of `b`).
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c = vec![1.0f32; m * n]; // non-zero: !accumulate must overwrite
        gemm_nt_into(&a, &bt, &mut c, m, n, k, false);
        assert_eq!(c, expect, "gemm_nt overwrite");

        // NT accumulate extends the partial sum.
        gemm_nt_into(&a, &bt, &mut c, m, n, k, true);
        let doubled: Vec<f32> = expect
            .iter()
            .zip(&c)
            .map(|(&e, &g)| {
                assert!((g - 2.0 * e).abs() <= 1e-4 * e.abs().max(1.0));
                g
            })
            .collect();
        assert_eq!(doubled.len(), m * n);
    }

    #[test]
    fn wide_output_reuses_the_shared_b_pack() {
        // A small-m / large-n shape (the class that regressed under the
        // old per-panel strip packing) against spot-checked naive values.
        let (m, k, n) = (3usize, 33usize, 1041usize);
        let a = Tensor::from_vec(pseudo(1, m * k), [m, k]).unwrap();
        let b = Tensor::from_vec(pseudo(2, k * n), [k, n]).unwrap();
        let c = a.matmul(&b).unwrap();
        for &(i, j) in &[(0usize, 0usize), (2, n - 1), (1, 512), (2, 511)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            assert!((acc - c.as_slice()[i * n + j]).abs() < 1e-3, "({i},{j})");
        }
    }
}
