//! Register-blocked GEMM microkernels and their packing routines.
//!
//! The packed GEMM in [`super::matmul`] bottoms out here: a fixed
//! [`MR`]×[`NR`] tile of the output is held in registers while a whole
//! `k`-panel of packed A and B streams through it. Three implementations
//! share one contract ([`TileKernel`]) and one packed-data layout, and
//! [`tile_kernel`] picks between them from [`crate::simd::active_isa`]:
//!
//! - **AVX2+FMA** — 12 `ymm` accumulators (6 rows × 2 × 8 lanes),
//!   `vfmadd231ps` per element, aligned loads of the B panel;
//! - **NEON** — 24 `q` accumulators (6 rows × 4 × 4 lanes), `fmla`;
//! - **portable** — the same loop with [`f32::mul_add`] per element.
//!
//! # Layout
//!
//! For a tile update `C[MR×NR] += A_panel · B_panel` over depth `k`:
//!
//! - `a` points at `k×MR` floats, **MR-major**: `a[p*MR + ir]` is row `ir`
//!   of A at depth `p` (zero-padded when the caller's row block is
//!   narrower than MR);
//! - `b` points at `k×NR` floats, **NR-major**: `b[p*NR + jr]` is column
//!   `jr` of B at depth `p` (zero-padded past the matrix edge);
//! - `c` is row-major with leading dimension `ldc ≥ NR`.
//!
//! # Bit-identity
//!
//! All three kernels compute, for every output element independently,
//! `c += a*b` fused (single rounding) at each depth step, in ascending
//! `p`. An FMA vector lane and [`f32::mul_add`] are both IEEE 754
//! `fusedMultiplyAdd`, so the results are **bit-identical** across ISAs —
//! the property `MEDSPLIT_ISA=scalar` A/B testing and the cross-ISA
//! determinism tests rely on. The portable kernel's `mul_add` lowers to a
//! libm call on builds without compile-time FMA, making it a slow
//! reference path by design; dispatch exists so it only runs when asked.

use crate::half::{f16_bits_to_f32, f32_to_f16_bits};
use crate::simd::{self, Isa};

/// Microkernel tile height (output rows held in registers).
pub(crate) const MR: usize = 6;
/// Microkernel tile width (output columns held in registers).
pub(crate) const NR: usize = 16;

/// A register-blocked tile update: `C[MR×NR] += A_panel(k×MR) · B_panel(k×NR)`.
///
/// # Safety
///
/// - `a` must be valid for `k * MR` reads, `b` for `k * NR` reads;
/// - `c` must be valid for reads and writes of an `MR×NR` tile with row
///   stride `ldc` (i.e. `(MR-1)*ldc + NR` elements) and must not alias
///   `a` or `b`;
/// - for the AVX2 kernel, `b` must be 32-byte aligned (the packing
///   buffers come from the 64-byte-aligned scratch arena, and `NR` floats
///   are a whole cache line, so every `p*NR` offset stays aligned);
/// - the corresponding instruction set must be available (guaranteed by
///   obtaining the pointer through [`tile_kernel`]).
pub(crate) type TileKernel = unsafe fn(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize);

/// Selects the tile kernel for the active ISA. Resolve once per GEMM
/// call, not per tile.
pub(crate) fn tile_kernel() -> TileKernel {
    match simd::active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => tile_avx2_entry,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => tile_neon_entry,
        _ => tile_portable,
    }
}

/// Portable reference kernel: identical per-element operation order to
/// the vector kernels, fused via [`f32::mul_add`].
///
/// # Safety
///
/// See [`TileKernel`] (no alignment requirement).
unsafe fn tile_portable(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    // Accumulate in locals (the register tile), exactly like the vector
    // kernels: load C once, stream the panels, store C once.
    let mut acc = [[0.0f32; NR]; MR];
    for (ir, row) in acc.iter_mut().enumerate() {
        for (jr, v) in row.iter_mut().enumerate() {
            // SAFETY: caller guarantees the C tile bounds.
            *v = unsafe { *c.add(ir * ldc + jr) };
        }
    }
    for p in 0..k {
        for (ir, row) in acc.iter_mut().enumerate() {
            // SAFETY: caller guarantees `k * MR` readable floats at `a`.
            let av = unsafe { *a.add(p * MR + ir) };
            for (jr, v) in row.iter_mut().enumerate() {
                // SAFETY: caller guarantees `k * NR` readable floats at `b`.
                let bv = unsafe { *b.add(p * NR + jr) };
                *v = av.mul_add(bv, *v);
            }
        }
    }
    for (ir, row) in acc.iter().enumerate() {
        for (jr, v) in row.iter().enumerate() {
            // SAFETY: caller guarantees the C tile bounds.
            unsafe { *c.add(ir * ldc + jr) = *v };
        }
    }
}

/// Plain-ABI entry for the AVX2 kernel so it can live in the
/// [`TileKernel`] dispatch table (`#[target_feature]` functions do not
/// coerce to `fn` pointers).
///
/// # Safety
///
/// See [`TileKernel`]; AVX2 and FMA must be available.
#[cfg(target_arch = "x86_64")]
unsafe fn tile_avx2_entry(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    // SAFETY: forwarded contract; `tile_kernel` only returns this entry
    // when feature detection reported AVX2+FMA.
    unsafe { tile_avx2(k, a, b, c, ldc) }
}

/// The AVX2+FMA tile kernel: 6×16 output tile in 12 `ymm` accumulators.
///
/// # Safety
///
/// See [`TileKernel`]; requires AVX2+FMA and 32-byte-aligned `b`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_avx2(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    use std::arch::x86_64::*;
    // SAFETY throughout: pointer arithmetic stays inside the bounds the
    // `TileKernel` contract guarantees.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (ir, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(c.add(ir * ldc));
            row[1] = _mm256_loadu_ps(c.add(ir * ldc + 8));
        }
        for p in 0..k {
            // B panel rows are NR = 16 floats = one 64-byte line; with the
            // 64-byte-aligned pack buffer every offset is 32-byte aligned.
            let b0 = _mm256_load_ps(b.add(p * NR));
            let b1 = _mm256_load_ps(b.add(p * NR + 8));
            let ap = a.add(p * MR);
            for (ir, row) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*ap.add(ir));
                row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                row[1] = _mm256_fmadd_ps(av, b1, row[1]);
            }
        }
        for (ir, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.add(ir * ldc), row[0]);
            _mm256_storeu_ps(c.add(ir * ldc + 8), row[1]);
        }
    }
}

/// Plain-ABI entry for the NEON kernel (see [`tile_avx2_entry`]).
///
/// # Safety
///
/// See [`TileKernel`].
#[cfg(target_arch = "aarch64")]
unsafe fn tile_neon_entry(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    // SAFETY: forwarded contract; NEON is baseline on aarch64.
    unsafe { tile_neon(k, a, b, c, ldc) }
}

/// The NEON tile kernel: 6×16 output tile in 24 `q` accumulators.
///
/// # Safety
///
/// See [`TileKernel`].
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn tile_neon(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    use std::arch::aarch64::*;
    // SAFETY throughout: pointer arithmetic stays inside the bounds the
    // `TileKernel` contract guarantees.
    unsafe {
        let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
        for (ir, row) in acc.iter_mut().enumerate() {
            for (v, lane) in row.iter_mut().enumerate() {
                *lane = vld1q_f32(c.add(ir * ldc + v * 4));
            }
        }
        for p in 0..k {
            let bp = b.add(p * NR);
            let bv = [
                vld1q_f32(bp),
                vld1q_f32(bp.add(4)),
                vld1q_f32(bp.add(8)),
                vld1q_f32(bp.add(12)),
            ];
            let ap = a.add(p * MR);
            for (ir, row) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f32(*ap.add(ir));
                for (v, lane) in row.iter_mut().enumerate() {
                    *lane = vfmaq_f32(*lane, av, bv[v]);
                }
            }
        }
        for (ir, row) in acc.iter().enumerate() {
            for (v, lane) in row.iter().enumerate() {
                vst1q_f32(c.add(ir * ldc + v * 4), *lane);
            }
        }
    }
}

/// Packs one MR-wide row panel of A into microkernel order:
/// `dst[p*MR + ir] = src[(i0+ir)*rs + p*cs]` for `p in 0..k`, rows past
/// `rows` zero-filled.
///
/// `(rs, cs)` are the row/column strides of the *logical* (possibly
/// transposed) A: `(k, 1)` for `A`, `(1, m)` for `Aᵀ` stored row-major.
pub(crate) fn pack_a_panel(
    src: &[f32],
    rs: usize,
    cs: usize,
    i0: usize,
    rows: usize,
    k: usize,
    dst: &mut [f32],
) {
    debug_assert!(rows <= MR);
    debug_assert_eq!(dst.len(), k * MR);
    for (p, out) in dst.chunks_exact_mut(MR).enumerate() {
        for (ir, v) in out.iter_mut().take(rows).enumerate() {
            *v = src[(i0 + ir) * rs + p * cs];
        }
        for v in out.iter_mut().skip(rows) {
            *v = 0.0;
        }
    }
}

/// Packs one NR-wide column tile of B into microkernel order:
/// `dst[p*NR + jr] = src[p*rs + (j0+jr)*cs]` for `p in 0..k`, columns
/// past `cols` zero-filled.
///
/// `(rs, cs)` are the row/column strides of the *logical* (possibly
/// transposed) B: `(n, 1)` for `B`, `(1, k)` for `Bᵀ` stored row-major.
pub(crate) fn pack_b_tile(
    src: &[f32],
    rs: usize,
    cs: usize,
    j0: usize,
    cols: usize,
    k: usize,
    dst: &mut [f32],
) {
    debug_assert!(cols <= NR);
    debug_assert_eq!(dst.len(), k * NR);
    for (p, out) in dst.chunks_exact_mut(NR).enumerate() {
        for (jr, v) in out.iter_mut().take(cols).enumerate() {
            *v = src[p * rs + (j0 + jr) * cs];
        }
        for v in out.iter_mut().skip(cols) {
            *v = 0.0;
        }
    }
}

/// A register-blocked tile update over an **f16-storage** B panel:
/// `C[MR×NR] += A_panel(k×MR, f32) · B_panel(k×NR, binary16 bits)`.
///
/// Same layout contract as [`TileKernel`], except `b` points at `k * NR`
/// `u16` half-words (IEEE 754 binary16 bit patterns, as produced by
/// [`pack_b_tile_f16`]). Each implementation widens a B lane to `f32`
/// (an *exact* conversion — every binary16 value is representable in
/// binary32) and then performs the identical ascending-`p` fused
/// multiply-add the f32 kernels use, so the f16 family is bit-identical
/// across ISAs for the same packed bits.
///
/// # Safety
///
/// As [`TileKernel`], with `b` valid for `k * NR` `u16` reads; for the
/// AVX2 kernel `b` must be 16-byte aligned (NR half-words are 32 bytes,
/// so every `p*NR` offset stays aligned in the 64-byte-aligned stores).
pub(crate) type TileKernelF16 = unsafe fn(k: usize, a: *const f32, b: *const u16, c: *mut f32, ldc: usize);

/// Selects the f16-storage tile kernel for the active ISA. The AVX2
/// variant additionally needs the F16C extension (`vcvtph2ps`); hosts
/// with AVX2 but no F16C run the portable kernel, bit-identically.
pub(crate) fn tile_kernel_f16() -> TileKernelF16 {
    match simd::active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if simd::f16c_supported() => tile_avx2_f16_entry,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => tile_neon_f16_entry,
        _ => tile_portable_f16,
    }
}

/// Portable f16-storage reference kernel: widens each B half-word with
/// [`f16_bits_to_f32`] and runs the exact per-element op order of
/// [`tile_portable`].
///
/// # Safety
///
/// See [`TileKernelF16`] (no alignment requirement).
unsafe fn tile_portable_f16(k: usize, a: *const f32, b: *const u16, c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (ir, row) in acc.iter_mut().enumerate() {
        for (jr, v) in row.iter_mut().enumerate() {
            // SAFETY: caller guarantees the C tile bounds.
            *v = unsafe { *c.add(ir * ldc + jr) };
        }
    }
    for p in 0..k {
        for (ir, row) in acc.iter_mut().enumerate() {
            // SAFETY: caller guarantees `k * MR` readable floats at `a`.
            let av = unsafe { *a.add(p * MR + ir) };
            for (jr, v) in row.iter_mut().enumerate() {
                // SAFETY: caller guarantees `k * NR` readable half-words at `b`.
                let bv = f16_bits_to_f32(unsafe { *b.add(p * NR + jr) });
                *v = av.mul_add(bv, *v);
            }
        }
    }
    for (ir, row) in acc.iter().enumerate() {
        for (jr, v) in row.iter().enumerate() {
            // SAFETY: caller guarantees the C tile bounds.
            unsafe { *c.add(ir * ldc + jr) = *v };
        }
    }
}

/// Plain-ABI entry for the AVX2+F16C kernel (see [`tile_avx2_entry`]).
///
/// # Safety
///
/// See [`TileKernelF16`]; AVX2, FMA, and F16C must be available.
#[cfg(target_arch = "x86_64")]
unsafe fn tile_avx2_f16_entry(k: usize, a: *const f32, b: *const u16, c: *mut f32, ldc: usize) {
    // SAFETY: forwarded contract; `tile_kernel_f16` only returns this
    // entry when feature detection reported AVX2+FMA and F16C.
    unsafe { tile_avx2_f16(k, a, b, c, ldc) }
}

/// The AVX2+FMA+F16C f16-storage tile kernel: each depth step widens the
/// two 8-lane halves of the B row with `vcvtph2ps`, then runs the same
/// 12-accumulator FMA sequence as [`tile_avx2`]. The conversion is exact,
/// so only storage (and bandwidth) change — never the rounding sequence.
///
/// # Safety
///
/// See [`TileKernelF16`]; requires AVX2+FMA+F16C and 16-byte-aligned `b`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
unsafe fn tile_avx2_f16(k: usize, a: *const f32, b: *const u16, c: *mut f32, ldc: usize) {
    use std::arch::x86_64::*;
    // SAFETY throughout: pointer arithmetic stays inside the bounds the
    // `TileKernelF16` contract guarantees.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (ir, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(c.add(ir * ldc));
            row[1] = _mm256_loadu_ps(c.add(ir * ldc + 8));
        }
        for p in 0..k {
            // A B-panel row is NR = 16 half-words = 32 bytes; with the
            // 64-byte-aligned pack store every `p*NR` offset is 16-byte
            // aligned for the 128-bit loads `vcvtph2ps` widens.
            let bp = b.add(p * NR);
            let b0 = _mm256_cvtph_ps(_mm_load_si128(bp.cast()));
            let b1 = _mm256_cvtph_ps(_mm_load_si128(bp.add(8).cast()));
            let ap = a.add(p * MR);
            for (ir, row) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*ap.add(ir));
                row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                row[1] = _mm256_fmadd_ps(av, b1, row[1]);
            }
        }
        for (ir, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.add(ir * ldc), row[0]);
            _mm256_storeu_ps(c.add(ir * ldc + 8), row[1]);
        }
    }
}

/// Plain-ABI entry for the NEON f16-storage kernel.
///
/// # Safety
///
/// See [`TileKernelF16`].
#[cfg(target_arch = "aarch64")]
unsafe fn tile_neon_f16_entry(k: usize, a: *const f32, b: *const u16, c: *mut f32, ldc: usize) {
    // SAFETY: forwarded contract; NEON is baseline on aarch64.
    unsafe { tile_neon_f16(k, a, b, c, ldc) }
}

/// The NEON f16-storage tile kernel: widens each B row into an on-stack
/// `f32` buffer (the conversion is exact, so going through software
/// conversion instead of `fcvtl` changes no bits) and runs the same
/// 24-accumulator `fmla` sequence as [`tile_neon`].
///
/// # Safety
///
/// See [`TileKernelF16`].
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn tile_neon_f16(k: usize, a: *const f32, b: *const u16, c: *mut f32, ldc: usize) {
    use std::arch::aarch64::*;
    // SAFETY throughout: pointer arithmetic stays inside the bounds the
    // `TileKernelF16` contract guarantees.
    unsafe {
        let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
        for (ir, row) in acc.iter_mut().enumerate() {
            for (v, lane) in row.iter_mut().enumerate() {
                *lane = vld1q_f32(c.add(ir * ldc + v * 4));
            }
        }
        for p in 0..k {
            let bp = b.add(p * NR);
            let mut brow = [0.0f32; NR];
            for (jr, v) in brow.iter_mut().enumerate() {
                *v = f16_bits_to_f32(*bp.add(jr));
            }
            let bv = [
                vld1q_f32(brow.as_ptr()),
                vld1q_f32(brow.as_ptr().add(4)),
                vld1q_f32(brow.as_ptr().add(8)),
                vld1q_f32(brow.as_ptr().add(12)),
            ];
            let ap = a.add(p * MR);
            for (ir, row) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f32(*ap.add(ir));
                for (v, lane) in row.iter_mut().enumerate() {
                    *lane = vfmaq_f32(*lane, av, bv[v]);
                }
            }
        }
        for (ir, row) in acc.iter().enumerate() {
            for (v, lane) in row.iter().enumerate() {
                vst1q_f32(c.add(ir * ldc + v * 4), *lane);
            }
        }
    }
}

/// [`pack_a_panel`] with binary16 storage: each element is narrowed with
/// [`f32_to_f16_bits`] (round-to-nearest-even — the *only* lossy step in
/// the f16-storage pipeline) as it is packed. Padding is `0u16`, the
/// binary16 `+0.0`.
pub(crate) fn pack_a_panel_f16(
    src: &[f32],
    rs: usize,
    cs: usize,
    i0: usize,
    rows: usize,
    k: usize,
    dst: &mut [u16],
) {
    debug_assert!(rows <= MR);
    debug_assert_eq!(dst.len(), k * MR);
    for (p, out) in dst.chunks_exact_mut(MR).enumerate() {
        for (ir, v) in out.iter_mut().take(rows).enumerate() {
            *v = f32_to_f16_bits(src[(i0 + ir) * rs + p * cs]);
        }
        for v in out.iter_mut().skip(rows) {
            *v = 0;
        }
    }
}

/// [`pack_b_tile`] with binary16 storage: same NR-major layout, each
/// element narrowed with [`f32_to_f16_bits`] as it is packed, `0u16`
/// padding past the matrix edge.
pub(crate) fn pack_b_tile_f16(
    src: &[f32],
    rs: usize,
    cs: usize,
    j0: usize,
    cols: usize,
    k: usize,
    dst: &mut [u16],
) {
    debug_assert!(cols <= NR);
    debug_assert_eq!(dst.len(), k * NR);
    for (p, out) in dst.chunks_exact_mut(NR).enumerate() {
        for (jr, v) in out.iter_mut().take(cols).enumerate() {
            *v = f32_to_f16_bits(src[p * rs + (j0 + jr) * cs]);
        }
        for v in out.iter_mut().skip(cols) {
            *v = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seed: u32, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h % 1999) as f32) / 250.0 - 4.0
            })
            .collect()
    }

    /// Fused reference for a full tile: same math the kernels promise.
    fn reference_tile(k: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
        for p in 0..k {
            for ir in 0..MR {
                let av = a[p * MR + ir];
                for jr in 0..NR {
                    c[ir * ldc + jr] = av.mul_add(b[p * NR + jr], c[ir * ldc + jr]);
                }
            }
        }
    }

    /// 64-byte-aligned copy of `src`, mirroring the scratch arena's
    /// guarantee for pack buffers.
    fn aligned_copy(src: &[f32]) -> Vec<f32> {
        crate::scratch::with_f32(src.len(), |buf| {
            buf.copy_from_slice(src);
            // The arena hands the same aligned buffer back, so test via a
            // plain copy round-trip is not enough; instead run the kernel
            // inside the closure where alignment holds.
            buf.to_vec()
        })
    }

    #[test]
    fn portable_kernel_matches_fused_reference() {
        for k in [1usize, 2, 7, 33] {
            let a = mk(k as u32, k * MR);
            let b = mk(100 + k as u32, k * NR);
            let ldc = NR + 3;
            let mut c = mk(200 + k as u32, MR * ldc);
            let mut expect = c.clone();
            reference_tile(k, &a, &b, &mut expect, ldc);
            unsafe { tile_portable(k, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), ldc) };
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_bit_matches_portable() {
        if !crate::simd::supported(Isa::Avx2) {
            eprintln!("skipping: host lacks AVX2+FMA");
            return;
        }
        for k in [1usize, 3, 8, 57] {
            let a = mk(7 + k as u32, k * MR);
            let b = mk(11 + k as u32, k * NR);
            let ldc = NR;
            let seed_c = mk(13 + k as u32, MR * ldc);

            let mut c_portable = seed_c.clone();
            unsafe { tile_portable(k, a.as_ptr(), b.as_ptr(), c_portable.as_mut_ptr(), ldc) };

            // Run the AVX2 kernel with B in a genuinely aligned buffer.
            let c_avx2 = crate::scratch::with_f32(k * NR, |bbuf| {
                bbuf.copy_from_slice(&b);
                let mut c = seed_c.clone();
                unsafe { tile_avx2_entry(k, a.as_ptr(), bbuf.as_ptr(), c.as_mut_ptr(), ldc) };
                c
            });
            assert_eq!(
                c_avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "AVX2 and portable kernels diverged at k={k}"
            );
        }
    }

    #[cfg(target_arch = "aarch64")]
    #[test]
    fn neon_kernel_bit_matches_portable() {
        for k in [1usize, 3, 8, 57] {
            let a = mk(7 + k as u32, k * MR);
            let b = mk(11 + k as u32, k * NR);
            let ldc = NR;
            let seed_c = mk(13 + k as u32, MR * ldc);
            let mut c_portable = seed_c.clone();
            unsafe { tile_portable(k, a.as_ptr(), b.as_ptr(), c_portable.as_mut_ptr(), ldc) };
            let mut c_neon = seed_c.clone();
            unsafe { tile_neon_entry(k, a.as_ptr(), b.as_ptr(), c_neon.as_mut_ptr(), ldc) };
            assert_eq!(
                c_neon.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pack_a_lays_out_mr_major_with_zero_padding() {
        // A is 4×3 row-major; pack the panel starting at row 0 with only
        // 4 valid rows (< MR), strides (rs=3, cs=1).
        let (m, k) = (4usize, 3usize);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 + 1.0).collect();
        let mut dst = vec![f32::NAN; k * MR];
        pack_a_panel(&a, k, 1, 0, m, k, &mut dst);
        for p in 0..k {
            for ir in 0..MR {
                let got = dst[p * MR + ir];
                if ir < m {
                    assert_eq!(got, a[ir * k + p], "p={p} ir={ir}");
                } else {
                    assert_eq!(got, 0.0, "padding p={p} ir={ir}");
                }
            }
        }
    }

    #[test]
    fn pack_a_transposed_strides_read_a_t() {
        // Logical A' = Aᵀ where stored A is k×m row-major: rs=1, cs=m.
        let (k, m) = (3usize, 2usize);
        let a: Vec<f32> = (0..k * m).map(|i| i as f32).collect();
        let mut dst = vec![f32::NAN; k * MR];
        pack_a_panel(&a, 1, m, 0, m, k, &mut dst);
        for p in 0..k {
            for ir in 0..m {
                assert_eq!(dst[p * MR + ir], a[p * m + ir]);
            }
        }
    }

    #[test]
    fn pack_b_lays_out_nr_major_with_zero_padding() {
        // B is 3×20 row-major; tile at j0=16 has only 4 valid columns.
        let (k, n) = (3usize, 20usize);
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.5).collect();
        let mut dst = vec![f32::NAN; k * NR];
        pack_b_tile(&b, n, 1, 16, n - 16, k, &mut dst);
        for p in 0..k {
            for jr in 0..NR {
                let got = dst[p * NR + jr];
                if 16 + jr < n {
                    assert_eq!(got, b[p * n + 16 + jr], "p={p} jr={jr}");
                } else {
                    assert_eq!(got, 0.0, "padding p={p} jr={jr}");
                }
            }
        }
    }

    /// Narrows an f32 B panel to binary16 bits, NR-major (what
    /// `pack_b_tile_f16` produces for a full tile).
    fn narrow_panel(b: &[f32]) -> Vec<u16> {
        b.iter().map(|&v| f32_to_f16_bits(v)).collect()
    }

    #[test]
    fn portable_f16_kernel_matches_widened_f32_portable() {
        // The f16 kernel must equal: widen the packed bits to f32, then
        // run the f32 kernel — conversion is exact, so storage is the
        // only difference.
        for k in [1usize, 2, 7, 33] {
            let a = mk(21 + k as u32, k * MR);
            let b16 = narrow_panel(&mk(22 + k as u32, k * NR));
            let b32: Vec<f32> = b16.iter().map(|&bits| f16_bits_to_f32(bits)).collect();
            let ldc = NR + 1;
            let seed_c = mk(23 + k as u32, MR * ldc);

            let mut c_f16 = seed_c.clone();
            unsafe { tile_portable_f16(k, a.as_ptr(), b16.as_ptr(), c_f16.as_mut_ptr(), ldc) };
            let mut c_f32 = seed_c.clone();
            unsafe { tile_portable(k, a.as_ptr(), b32.as_ptr(), c_f32.as_mut_ptr(), ldc) };
            assert_eq!(
                c_f16.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_f32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "f16 and widened-f32 portable kernels diverged at k={k}"
            );
        }
    }

    /// Runs `f` with `b16` copied into a 64-byte-aligned buffer (the
    /// alignment plan stores guarantee for f16 panels).
    fn with_aligned_u16<R>(b16: &[u16], f: impl FnOnce(*const u16) -> R) -> R {
        crate::scratch::with_f32(b16.len().div_ceil(2), |buf| {
            let ptr = buf.as_mut_ptr().cast::<u16>();
            // SAFETY: the arena buffer holds at least `b16.len()` u16s
            // and u16 has no validity constraints on the f32 bytes.
            unsafe { std::ptr::copy_nonoverlapping(b16.as_ptr(), ptr, b16.len()) };
            f(ptr)
        })
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_f16_kernel_bit_matches_portable_f16() {
        if !crate::simd::supported(Isa::Avx2) || !crate::simd::f16c_supported() {
            eprintln!("skipping: host lacks AVX2+FMA+F16C");
            return;
        }
        for k in [1usize, 3, 8, 57] {
            let a = mk(31 + k as u32, k * MR);
            let b16 = narrow_panel(&mk(32 + k as u32, k * NR));
            let ldc = NR;
            let seed_c = mk(33 + k as u32, MR * ldc);

            let mut c_portable = seed_c.clone();
            unsafe { tile_portable_f16(k, a.as_ptr(), b16.as_ptr(), c_portable.as_mut_ptr(), ldc) };
            let c_avx2 = with_aligned_u16(&b16, |bp| {
                let mut c = seed_c.clone();
                unsafe { tile_avx2_f16_entry(k, a.as_ptr(), bp, c.as_mut_ptr(), ldc) };
                c
            });
            assert_eq!(
                c_avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "AVX2 and portable f16 kernels diverged at k={k}"
            );
        }
    }

    #[cfg(target_arch = "aarch64")]
    #[test]
    fn neon_f16_kernel_bit_matches_portable_f16() {
        for k in [1usize, 3, 8, 57] {
            let a = mk(31 + k as u32, k * MR);
            let b16 = narrow_panel(&mk(32 + k as u32, k * NR));
            let ldc = NR;
            let seed_c = mk(33 + k as u32, MR * ldc);
            let mut c_portable = seed_c.clone();
            unsafe { tile_portable_f16(k, a.as_ptr(), b16.as_ptr(), c_portable.as_mut_ptr(), ldc) };
            let mut c_neon = seed_c.clone();
            unsafe { tile_neon_f16_entry(k, a.as_ptr(), b16.as_ptr(), c_neon.as_mut_ptr(), ldc) };
            assert_eq!(
                c_neon.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pack_f16_lays_out_like_f32_pack_with_narrowing() {
        // B: 3×20 row-major, tile at j0=16 → 4 valid columns; A: 4×3.
        let (k, n) = (3usize, 20usize);
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.37 - 2.0).collect();
        let mut d32 = vec![f32::NAN; k * NR];
        let mut d16 = vec![u16::MAX; k * NR];
        pack_b_tile(&b, n, 1, 16, n - 16, k, &mut d32);
        pack_b_tile_f16(&b, n, 1, 16, n - 16, k, &mut d16);
        for (i, (&w, &h)) in d32.iter().zip(&d16).enumerate() {
            assert_eq!(h, f32_to_f16_bits(w), "B slot {i}");
        }

        let (m, ka) = (4usize, 3usize);
        let a: Vec<f32> = (0..m * ka).map(|i| i as f32 + 0.5).collect();
        let mut a32 = vec![f32::NAN; ka * MR];
        let mut a16 = vec![u16::MAX; ka * MR];
        pack_a_panel(&a, ka, 1, 0, m, ka, &mut a32);
        pack_a_panel_f16(&a, ka, 1, 0, m, ka, &mut a16);
        for (i, (&w, &h)) in a32.iter().zip(&a16).enumerate() {
            assert_eq!(h, f32_to_f16_bits(w), "A slot {i}");
        }
    }

    #[test]
    fn aligned_copy_helper_is_aligned_in_place() {
        // Sanity-check the alignment premise the AVX2 test relies on.
        let v = aligned_copy(&mk(1, 32));
        assert_eq!(v.len(), 32);
        crate::scratch::with_f32(NR * 4, |buf| {
            assert_eq!(buf.as_ptr() as usize % crate::scratch::ALIGN, 0);
        });
    }
}
