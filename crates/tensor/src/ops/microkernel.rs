//! Register-blocked GEMM microkernels and their packing routines.
//!
//! The packed GEMM in [`super::matmul`] bottoms out here: a fixed
//! [`MR`]×[`NR`] tile of the output is held in registers while a whole
//! `k`-panel of packed A and B streams through it. Three implementations
//! share one contract ([`TileKernel`]) and one packed-data layout, and
//! [`tile_kernel`] picks between them from [`crate::simd::active_isa`]:
//!
//! - **AVX2+FMA** — 12 `ymm` accumulators (6 rows × 2 × 8 lanes),
//!   `vfmadd231ps` per element, aligned loads of the B panel;
//! - **NEON** — 24 `q` accumulators (6 rows × 4 × 4 lanes), `fmla`;
//! - **portable** — the same loop with [`f32::mul_add`] per element.
//!
//! # Layout
//!
//! For a tile update `C[MR×NR] += A_panel · B_panel` over depth `k`:
//!
//! - `a` points at `k×MR` floats, **MR-major**: `a[p*MR + ir]` is row `ir`
//!   of A at depth `p` (zero-padded when the caller's row block is
//!   narrower than MR);
//! - `b` points at `k×NR` floats, **NR-major**: `b[p*NR + jr]` is column
//!   `jr` of B at depth `p` (zero-padded past the matrix edge);
//! - `c` is row-major with leading dimension `ldc ≥ NR`.
//!
//! # Bit-identity
//!
//! All three kernels compute, for every output element independently,
//! `c += a*b` fused (single rounding) at each depth step, in ascending
//! `p`. An FMA vector lane and [`f32::mul_add`] are both IEEE 754
//! `fusedMultiplyAdd`, so the results are **bit-identical** across ISAs —
//! the property `MEDSPLIT_ISA=scalar` A/B testing and the cross-ISA
//! determinism tests rely on. The portable kernel's `mul_add` lowers to a
//! libm call on builds without compile-time FMA, making it a slow
//! reference path by design; dispatch exists so it only runs when asked.

use crate::simd::{self, Isa};

/// Microkernel tile height (output rows held in registers).
pub(crate) const MR: usize = 6;
/// Microkernel tile width (output columns held in registers).
pub(crate) const NR: usize = 16;

/// A register-blocked tile update: `C[MR×NR] += A_panel(k×MR) · B_panel(k×NR)`.
///
/// # Safety
///
/// - `a` must be valid for `k * MR` reads, `b` for `k * NR` reads;
/// - `c` must be valid for reads and writes of an `MR×NR` tile with row
///   stride `ldc` (i.e. `(MR-1)*ldc + NR` elements) and must not alias
///   `a` or `b`;
/// - for the AVX2 kernel, `b` must be 32-byte aligned (the packing
///   buffers come from the 64-byte-aligned scratch arena, and `NR` floats
///   are a whole cache line, so every `p*NR` offset stays aligned);
/// - the corresponding instruction set must be available (guaranteed by
///   obtaining the pointer through [`tile_kernel`]).
pub(crate) type TileKernel = unsafe fn(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize);

/// Selects the tile kernel for the active ISA. Resolve once per GEMM
/// call, not per tile.
pub(crate) fn tile_kernel() -> TileKernel {
    match simd::active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => tile_avx2_entry,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => tile_neon_entry,
        _ => tile_portable,
    }
}

/// Portable reference kernel: identical per-element operation order to
/// the vector kernels, fused via [`f32::mul_add`].
///
/// # Safety
///
/// See [`TileKernel`] (no alignment requirement).
unsafe fn tile_portable(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    // Accumulate in locals (the register tile), exactly like the vector
    // kernels: load C once, stream the panels, store C once.
    let mut acc = [[0.0f32; NR]; MR];
    for (ir, row) in acc.iter_mut().enumerate() {
        for (jr, v) in row.iter_mut().enumerate() {
            // SAFETY: caller guarantees the C tile bounds.
            *v = unsafe { *c.add(ir * ldc + jr) };
        }
    }
    for p in 0..k {
        for (ir, row) in acc.iter_mut().enumerate() {
            // SAFETY: caller guarantees `k * MR` readable floats at `a`.
            let av = unsafe { *a.add(p * MR + ir) };
            for (jr, v) in row.iter_mut().enumerate() {
                // SAFETY: caller guarantees `k * NR` readable floats at `b`.
                let bv = unsafe { *b.add(p * NR + jr) };
                *v = av.mul_add(bv, *v);
            }
        }
    }
    for (ir, row) in acc.iter().enumerate() {
        for (jr, v) in row.iter().enumerate() {
            // SAFETY: caller guarantees the C tile bounds.
            unsafe { *c.add(ir * ldc + jr) = *v };
        }
    }
}

/// Plain-ABI entry for the AVX2 kernel so it can live in the
/// [`TileKernel`] dispatch table (`#[target_feature]` functions do not
/// coerce to `fn` pointers).
///
/// # Safety
///
/// See [`TileKernel`]; AVX2 and FMA must be available.
#[cfg(target_arch = "x86_64")]
unsafe fn tile_avx2_entry(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    // SAFETY: forwarded contract; `tile_kernel` only returns this entry
    // when feature detection reported AVX2+FMA.
    unsafe { tile_avx2(k, a, b, c, ldc) }
}

/// The AVX2+FMA tile kernel: 6×16 output tile in 12 `ymm` accumulators.
///
/// # Safety
///
/// See [`TileKernel`]; requires AVX2+FMA and 32-byte-aligned `b`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_avx2(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    use std::arch::x86_64::*;
    // SAFETY throughout: pointer arithmetic stays inside the bounds the
    // `TileKernel` contract guarantees.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (ir, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(c.add(ir * ldc));
            row[1] = _mm256_loadu_ps(c.add(ir * ldc + 8));
        }
        for p in 0..k {
            // B panel rows are NR = 16 floats = one 64-byte line; with the
            // 64-byte-aligned pack buffer every offset is 32-byte aligned.
            let b0 = _mm256_load_ps(b.add(p * NR));
            let b1 = _mm256_load_ps(b.add(p * NR + 8));
            let ap = a.add(p * MR);
            for (ir, row) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*ap.add(ir));
                row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                row[1] = _mm256_fmadd_ps(av, b1, row[1]);
            }
        }
        for (ir, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.add(ir * ldc), row[0]);
            _mm256_storeu_ps(c.add(ir * ldc + 8), row[1]);
        }
    }
}

/// Plain-ABI entry for the NEON kernel (see [`tile_avx2_entry`]).
///
/// # Safety
///
/// See [`TileKernel`].
#[cfg(target_arch = "aarch64")]
unsafe fn tile_neon_entry(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    // SAFETY: forwarded contract; NEON is baseline on aarch64.
    unsafe { tile_neon(k, a, b, c, ldc) }
}

/// The NEON tile kernel: 6×16 output tile in 24 `q` accumulators.
///
/// # Safety
///
/// See [`TileKernel`].
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn tile_neon(k: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    use std::arch::aarch64::*;
    // SAFETY throughout: pointer arithmetic stays inside the bounds the
    // `TileKernel` contract guarantees.
    unsafe {
        let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
        for (ir, row) in acc.iter_mut().enumerate() {
            for (v, lane) in row.iter_mut().enumerate() {
                *lane = vld1q_f32(c.add(ir * ldc + v * 4));
            }
        }
        for p in 0..k {
            let bp = b.add(p * NR);
            let bv = [
                vld1q_f32(bp),
                vld1q_f32(bp.add(4)),
                vld1q_f32(bp.add(8)),
                vld1q_f32(bp.add(12)),
            ];
            let ap = a.add(p * MR);
            for (ir, row) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f32(*ap.add(ir));
                for (v, lane) in row.iter_mut().enumerate() {
                    *lane = vfmaq_f32(*lane, av, bv[v]);
                }
            }
        }
        for (ir, row) in acc.iter().enumerate() {
            for (v, lane) in row.iter().enumerate() {
                vst1q_f32(c.add(ir * ldc + v * 4), *lane);
            }
        }
    }
}

/// Packs one MR-wide row panel of A into microkernel order:
/// `dst[p*MR + ir] = src[(i0+ir)*rs + p*cs]` for `p in 0..k`, rows past
/// `rows` zero-filled.
///
/// `(rs, cs)` are the row/column strides of the *logical* (possibly
/// transposed) A: `(k, 1)` for `A`, `(1, m)` for `Aᵀ` stored row-major.
pub(crate) fn pack_a_panel(
    src: &[f32],
    rs: usize,
    cs: usize,
    i0: usize,
    rows: usize,
    k: usize,
    dst: &mut [f32],
) {
    debug_assert!(rows <= MR);
    debug_assert_eq!(dst.len(), k * MR);
    for (p, out) in dst.chunks_exact_mut(MR).enumerate() {
        for (ir, v) in out.iter_mut().take(rows).enumerate() {
            *v = src[(i0 + ir) * rs + p * cs];
        }
        for v in out.iter_mut().skip(rows) {
            *v = 0.0;
        }
    }
}

/// Packs one NR-wide column tile of B into microkernel order:
/// `dst[p*NR + jr] = src[p*rs + (j0+jr)*cs]` for `p in 0..k`, columns
/// past `cols` zero-filled.
///
/// `(rs, cs)` are the row/column strides of the *logical* (possibly
/// transposed) B: `(n, 1)` for `B`, `(1, k)` for `Bᵀ` stored row-major.
pub(crate) fn pack_b_tile(
    src: &[f32],
    rs: usize,
    cs: usize,
    j0: usize,
    cols: usize,
    k: usize,
    dst: &mut [f32],
) {
    debug_assert!(cols <= NR);
    debug_assert_eq!(dst.len(), k * NR);
    for (p, out) in dst.chunks_exact_mut(NR).enumerate() {
        for (jr, v) in out.iter_mut().take(cols).enumerate() {
            *v = src[p * rs + (j0 + jr) * cs];
        }
        for v in out.iter_mut().skip(cols) {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(seed: u32, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h % 1999) as f32) / 250.0 - 4.0
            })
            .collect()
    }

    /// Fused reference for a full tile: same math the kernels promise.
    fn reference_tile(k: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
        for p in 0..k {
            for ir in 0..MR {
                let av = a[p * MR + ir];
                for jr in 0..NR {
                    c[ir * ldc + jr] = av.mul_add(b[p * NR + jr], c[ir * ldc + jr]);
                }
            }
        }
    }

    /// 64-byte-aligned copy of `src`, mirroring the scratch arena's
    /// guarantee for pack buffers.
    fn aligned_copy(src: &[f32]) -> Vec<f32> {
        crate::scratch::with_f32(src.len(), |buf| {
            buf.copy_from_slice(src);
            // The arena hands the same aligned buffer back, so test via a
            // plain copy round-trip is not enough; instead run the kernel
            // inside the closure where alignment holds.
            buf.to_vec()
        })
    }

    #[test]
    fn portable_kernel_matches_fused_reference() {
        for k in [1usize, 2, 7, 33] {
            let a = mk(k as u32, k * MR);
            let b = mk(100 + k as u32, k * NR);
            let ldc = NR + 3;
            let mut c = mk(200 + k as u32, MR * ldc);
            let mut expect = c.clone();
            reference_tile(k, &a, &b, &mut expect, ldc);
            unsafe { tile_portable(k, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), ldc) };
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_bit_matches_portable() {
        if !crate::simd::supported(Isa::Avx2) {
            eprintln!("skipping: host lacks AVX2+FMA");
            return;
        }
        for k in [1usize, 3, 8, 57] {
            let a = mk(7 + k as u32, k * MR);
            let b = mk(11 + k as u32, k * NR);
            let ldc = NR;
            let seed_c = mk(13 + k as u32, MR * ldc);

            let mut c_portable = seed_c.clone();
            unsafe { tile_portable(k, a.as_ptr(), b.as_ptr(), c_portable.as_mut_ptr(), ldc) };

            // Run the AVX2 kernel with B in a genuinely aligned buffer.
            let c_avx2 = crate::scratch::with_f32(k * NR, |bbuf| {
                bbuf.copy_from_slice(&b);
                let mut c = seed_c.clone();
                unsafe { tile_avx2_entry(k, a.as_ptr(), bbuf.as_ptr(), c.as_mut_ptr(), ldc) };
                c
            });
            assert_eq!(
                c_avx2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "AVX2 and portable kernels diverged at k={k}"
            );
        }
    }

    #[cfg(target_arch = "aarch64")]
    #[test]
    fn neon_kernel_bit_matches_portable() {
        for k in [1usize, 3, 8, 57] {
            let a = mk(7 + k as u32, k * MR);
            let b = mk(11 + k as u32, k * NR);
            let ldc = NR;
            let seed_c = mk(13 + k as u32, MR * ldc);
            let mut c_portable = seed_c.clone();
            unsafe { tile_portable(k, a.as_ptr(), b.as_ptr(), c_portable.as_mut_ptr(), ldc) };
            let mut c_neon = seed_c.clone();
            unsafe { tile_neon_entry(k, a.as_ptr(), b.as_ptr(), c_neon.as_mut_ptr(), ldc) };
            assert_eq!(
                c_neon.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c_portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pack_a_lays_out_mr_major_with_zero_padding() {
        // A is 4×3 row-major; pack the panel starting at row 0 with only
        // 4 valid rows (< MR), strides (rs=3, cs=1).
        let (m, k) = (4usize, 3usize);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 + 1.0).collect();
        let mut dst = vec![f32::NAN; k * MR];
        pack_a_panel(&a, k, 1, 0, m, k, &mut dst);
        for p in 0..k {
            for ir in 0..MR {
                let got = dst[p * MR + ir];
                if ir < m {
                    assert_eq!(got, a[ir * k + p], "p={p} ir={ir}");
                } else {
                    assert_eq!(got, 0.0, "padding p={p} ir={ir}");
                }
            }
        }
    }

    #[test]
    fn pack_a_transposed_strides_read_a_t() {
        // Logical A' = Aᵀ where stored A is k×m row-major: rs=1, cs=m.
        let (k, m) = (3usize, 2usize);
        let a: Vec<f32> = (0..k * m).map(|i| i as f32).collect();
        let mut dst = vec![f32::NAN; k * MR];
        pack_a_panel(&a, 1, m, 0, m, k, &mut dst);
        for p in 0..k {
            for ir in 0..m {
                assert_eq!(dst[p * MR + ir], a[p * m + ir]);
            }
        }
    }

    #[test]
    fn pack_b_lays_out_nr_major_with_zero_padding() {
        // B is 3×20 row-major; tile at j0=16 has only 4 valid columns.
        let (k, n) = (3usize, 20usize);
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.5).collect();
        let mut dst = vec![f32::NAN; k * NR];
        pack_b_tile(&b, n, 1, 16, n - 16, k, &mut dst);
        for p in 0..k {
            for jr in 0..NR {
                let got = dst[p * NR + jr];
                if 16 + jr < n {
                    assert_eq!(got, b[p * n + 16 + jr], "p={p} jr={jr}");
                } else {
                    assert_eq!(got, 0.0, "padding p={p} jr={jr}");
                }
            }
        }
    }

    #[test]
    fn aligned_copy_helper_is_aligned_in_place() {
        // Sanity-check the alignment premise the AVX2 test relies on.
        let v = aligned_copy(&mk(1, 32));
        assert_eq!(v.len(), 32);
        crate::scratch::with_f32(NR * 4, |buf| {
            assert_eq!(buf.as_ptr() as usize % crate::scratch::ALIGN, 0);
        });
    }
}
