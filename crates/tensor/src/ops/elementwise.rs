//! Elementwise arithmetic with NumPy-style broadcasting.
//!
//! Same-shape binary ops, the in-place accumulators (`add_assign`,
//! `axpy`, `scale_inplace`), the ReLU-family activations, and the
//! `par_map`/`par_zip_map` combinators run across the worker pool for
//! large tensors, in fixed-size chunks so results do not depend on the
//! thread count. Small tensors stay on the sequential path — below
//! [`PAR_MIN`] elements the dispatch overhead exceeds the work.
//!
//! The same-shape binary ops, accumulators, and activations bottom out
//! in the ISA-dispatched kernels of [`crate::simd`]: vectorised on
//! AVX2/NEON hosts, with a portable path that is bit-identical by
//! construction (see that module's docs).

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::error::{Result, TensorError};
use crate::pool;
use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

/// Elements per parallel chunk; fixed (never thread-derived) so chunk
/// boundaries — and therefore results — are deterministic.
const PAR_CHUNK: usize = 32 * 1024;
/// Minimum element count before an elementwise op goes parallel.
const PAR_MIN: usize = PAR_CHUNK;

/// Same-shape binary op through the ISA-dispatched kernel, chunked over
/// the pool for large tensors.
fn simd_binary(a: &Tensor, b: &Tensor, op: simd::BinOp) -> Result<Tensor> {
    debug_assert_eq!(a.shape(), b.shape());
    let (da, db) = (a.as_slice(), b.as_slice());
    let mut data = vec![0.0f32; da.len()];
    if da.len() >= PAR_MIN {
        pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
            let off = ci * PAR_CHUNK;
            simd::binary(
                op,
                &da[off..off + chunk.len()],
                &db[off..off + chunk.len()],
                chunk,
            );
        });
    } else {
        simd::binary(op, da, db, &mut data);
    }
    Tensor::from_vec(data, a.shape().clone())
}

/// Computes `out[i] = f(a[bcast(i)], b[bcast(i)])` over the broadcast shape.
/// The same-shape fast path goes through [`simd_binary`] instead.
fn broadcast_binary(
    a: &Tensor,
    b: &Tensor,
    op: &'static str,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .map_err(|_| TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            op,
        })?;
    let rank = out_shape.rank();
    let out_dims = out_shape.dims().to_vec();
    let numel = out_shape.numel();
    let mut data = Vec::with_capacity(numel);

    // Precompute per-axis effective strides (0 where the input broadcasts).
    let eff_strides = |t: &Tensor| -> Vec<usize> {
        let mut s = vec![0usize; rank];
        let t_strides = t.shape().strides();
        let t_dims = t.dims();
        let off = rank - t.rank();
        for i in 0..t.rank() {
            s[off + i] = if t_dims[i] == 1 { 0 } else { t_strides[i] };
        }
        s
    };
    let sa = eff_strides(a);
    let sb = eff_strides(b);

    let mut index = vec![0usize; rank];
    let (da, db) = (a.as_slice(), b.as_slice());
    for _ in 0..numel {
        let mut oa = 0;
        let mut ob = 0;
        for k in 0..rank {
            oa += index[k] * sa[k];
            ob += index[k] * sb[k];
        }
        data.push(f(da[oa], db[ob]));
        // Increment the multi-index (row-major odometer).
        for k in (0..rank).rev() {
            index[k] += 1;
            if index[k] < out_dims[k] {
                break;
            }
            index[k] = 0;
        }
    }
    Tensor::from_vec(data, out_shape)
}

impl Tensor {
    /// Broadcasting addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes are not
    /// broadcast-compatible.
    pub fn try_add(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape() == other.shape() {
            return simd_binary(self, other, simd::BinOp::Add);
        }
        broadcast_binary(self, other, "add", |a, b| a + b)
    }

    /// Broadcasting subtraction.
    ///
    /// # Errors
    ///
    /// See [`try_add`](Self::try_add).
    pub fn try_sub(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape() == other.shape() {
            return simd_binary(self, other, simd::BinOp::Sub);
        }
        broadcast_binary(self, other, "sub", |a, b| a - b)
    }

    /// Broadcasting elementwise multiplication.
    ///
    /// # Errors
    ///
    /// See [`try_add`](Self::try_add).
    pub fn try_mul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape() == other.shape() {
            return simd_binary(self, other, simd::BinOp::Mul);
        }
        broadcast_binary(self, other, "mul", |a, b| a * b)
    }

    /// Broadcasting elementwise division.
    ///
    /// # Errors
    ///
    /// See [`try_add`](Self::try_add).
    pub fn try_div(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape() == other.shape() {
            return simd_binary(self, other, simd::BinOp::Div);
        }
        broadcast_binary(self, other, "div", |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other` for identically-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "add_assign",
            });
        }
        let src = other.as_slice();
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN {
            pool::parallel_chunks_mut(dst, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                simd::add_assign(chunk, &src[off..off + chunk.len()]);
            });
        } else {
            simd::add_assign(dst, src);
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy) for identically-shaped
    /// tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "axpy",
            });
        }
        let src = other.as_slice();
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN {
            pool::parallel_chunks_mut(dst, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                simd::axpy(alpha, chunk, &src[off..off + chunk.len()]);
            });
        } else {
            simd::axpy(alpha, dst, src);
        }
        Ok(())
    }

    /// In-place scaling.
    pub fn scale_inplace(&mut self, s: f32) {
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN {
            pool::parallel_chunks_mut(dst, PAR_CHUNK, |_, chunk| {
                simd::scale(chunk, s);
            });
        } else {
            simd::scale(dst, s);
        }
    }

    /// Elementwise ReLU: `max(x, 0)` computed as a compare-and-select so
    /// NaN and `-0.0` inputs map to `+0.0` on every ISA. SIMD-dispatched
    /// and chunk-parallel for large tensors.
    pub fn relu(&self) -> Tensor {
        let src = self.as_slice();
        let mut data = vec![0.0f32; src.len()];
        if data.len() >= PAR_MIN {
            pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                simd::relu(&src[off..off + chunk.len()], chunk);
            });
        } else {
            simd::relu(src, &mut data);
        }
        Tensor::from_vec(data, self.shape().clone()).expect("relu preserves length")
    }

    /// ReLU backward: `self` is the cached forward *output* `y`; returns
    /// `grad` where `y > 0`, zero elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn relu_backward(&self, grad: &Tensor) -> Result<Tensor> {
        if self.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: grad.shape().clone(),
                op: "relu_backward",
            });
        }
        let (y, g) = (self.as_slice(), grad.as_slice());
        let mut data = vec![0.0f32; y.len()];
        if data.len() >= PAR_MIN {
            pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                simd::relu_grad(&y[off..off + chunk.len()], &g[off..off + chunk.len()], chunk);
            });
        } else {
            simd::relu_grad(y, g, &mut data);
        }
        Tensor::from_vec(data, self.shape().clone())
    }

    /// Elementwise leaky ReLU: `x` where `x > 0`, `alpha * x` elsewhere.
    /// SIMD-dispatched and chunk-parallel for large tensors.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        let src = self.as_slice();
        let mut data = vec![0.0f32; src.len()];
        if data.len() >= PAR_MIN {
            pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                simd::leaky_relu(alpha, &src[off..off + chunk.len()], chunk);
            });
        } else {
            simd::leaky_relu(alpha, src, &mut data);
        }
        Tensor::from_vec(data, self.shape().clone()).expect("leaky_relu preserves length")
    }

    /// Leaky ReLU backward: `self` is the cached forward *input* `x`;
    /// returns `grad` where `x > 0`, `alpha * grad` elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn leaky_relu_backward(&self, alpha: f32, grad: &Tensor) -> Result<Tensor> {
        if self.shape() != grad.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: grad.shape().clone(),
                op: "leaky_relu_backward",
            });
        }
        let (x, g) = (self.as_slice(), grad.as_slice());
        let mut data = vec![0.0f32; x.len()];
        if data.len() >= PAR_MIN {
            pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                simd::leaky_relu_grad(
                    alpha,
                    &x[off..off + chunk.len()],
                    &g[off..off + chunk.len()],
                    chunk,
                );
            });
        } else {
            simd::leaky_relu_grad(alpha, x, g, &mut data);
        }
        Tensor::from_vec(data, self.shape().clone())
    }

    /// Like [`map`](Self::map), but fans large tensors out across the
    /// worker pool. Requires a `Sync` closure; results are identical to
    /// the sequential `map` for any thread count.
    pub fn par_map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.as_slice();
        let mut data = vec![0.0f32; src.len()];
        if data.len() >= PAR_MIN {
            pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = f(src[off + i]);
                }
            });
        } else {
            for (v, &x) in data.iter_mut().zip(src) {
                *v = f(x);
            }
        }
        Tensor::from_vec(data, self.shape().clone()).expect("par_map preserves length")
    }

    /// Like [`zip_map`](Self::zip_map), but fans large tensors out across
    /// the worker pool. Requires a `Sync` closure.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn par_zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
                op: "par_zip_map",
            });
        }
        let (da, db) = (self.as_slice(), other.as_slice());
        let mut data = vec![0.0f32; da.len()];
        if data.len() >= PAR_MIN {
            pool::parallel_chunks_mut(&mut data, PAR_CHUNK, |ci, chunk| {
                let off = ci * PAR_CHUNK;
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = f(da[off + i], db[off + i]);
                }
            });
        } else {
            for ((v, &x), &y) in data.iter_mut().zip(da).zip(db) {
                *v = f(x, y);
            }
        }
        Tensor::from_vec(data, self.shape().clone())
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.map_inplace(|_| value);
    }

    /// Elementwise natural exponent.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise power.
    pub fn powf(&self, p: f32) -> Tensor {
        self.map(|x| x.powf(p))
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Squared Frobenius norm (sum of squares).
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum()
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.numel() != other.numel() {
            return Err(TensorError::LengthMismatch {
                expected: self.numel(),
                actual: other.numel(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// `true` if every pairwise difference is at most `tol` in absolute
    /// value and the shapes match.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $try:ident) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            /// # Panics
            ///
            /// Panics if the shapes are not broadcast-compatible; use the
            /// `try_*` method for a fallible version.
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$try(rhs)
                    .expect(concat!("shape mismatch in `", stringify!($method), "`"))
            }
        }
        impl $trait for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, try_add);
impl_binop!(Sub, sub, try_sub);
impl_binop!(Mul, mul, try_mul);
impl_binop!(Div, div, try_div);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Neg for Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        -&self
    }
}

/// Helper used by reductions & broadcasting tests: sums a broadcast gradient
/// back down to the original (smaller) shape. Given `grad` with shape
/// `big` and a target shape `small` that broadcasts to `big`, returns the
/// gradient summed over the broadcast axes so it has shape `small`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `small` does not broadcast to
/// `grad`'s shape.
pub fn reduce_broadcast(grad: &Tensor, small: &Shape) -> Result<Tensor> {
    if !small.broadcasts_to(grad.shape()) {
        return Err(TensorError::ShapeMismatch {
            lhs: small.clone(),
            rhs: grad.shape().clone(),
            op: "reduce_broadcast",
        });
    }
    let big = grad.shape();
    let rank = big.rank();
    let off = rank - small.rank();
    let mut out = Tensor::zeros(small.clone());
    let small_strides = small.strides();
    let big_dims = big.dims().to_vec();
    let mut index = vec![0usize; rank];
    let gdata = grad.as_slice();
    let odata = out.as_mut_slice();
    for &g in gdata {
        let mut so = 0;
        for k in off..rank {
            let sd = small.dims()[k - off];
            if sd != 1 {
                so += index[k] * small_strides[k - off];
            }
        }
        odata[so] += g;
        for k in (0..rank).rev() {
            index[k] += 1;
            if index[k] < big_dims[k] {
                break;
            }
            index[k] = 0;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::arange(4);
        let b = Tensor::ones([4]);
        assert_eq!((&a + &b).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        let a = Tensor::arange(6).reshape([2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]).unwrap();
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn broadcast_column_vector() {
        let a = Tensor::arange(6).reshape([2, 3]).unwrap();
        let b = Tensor::from_vec(vec![100.0, 200.0], [2, 1]).unwrap();
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[100.0, 101.0, 102.0, 203.0, 204.0, 205.0]);
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let a = Tensor::arange(3);
        let s = Tensor::scalar(5.0);
        assert_eq!((&a * &s).as_slice(), &[0.0, 5.0, 10.0]);
    }

    #[test]
    fn sub_mul_div() {
        let a = Tensor::from_vec(vec![4.0, 9.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0], [2]).unwrap();
        assert_eq!((&a - &b).as_slice(), &[2.0, 6.0]);
        assert_eq!((&a * &b).as_slice(), &[8.0, 27.0]);
        assert_eq!((&a / &b).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::ones([2, 3]);
        let b = Tensor::ones([4]);
        assert!(a.try_add(&b).is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn operator_panics_on_mismatch() {
        let _ = &Tensor::ones([2]) + &Tensor::ones([3]);
    }

    #[test]
    fn neg_and_scalar_helpers() {
        let a = Tensor::arange(3);
        assert_eq!((-&a).as_slice(), &[0.0, -1.0, -2.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::arange(3);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.5, 4.0]);
        assert!(a.add_assign(&Tensor::ones([4])).is_err());
        assert!(a.axpy(1.0, &Tensor::ones([4])).is_err());
    }

    #[test]
    fn unary_math() {
        let a = Tensor::from_vec(vec![1.0, 4.0], [2]).unwrap();
        assert_eq!(a.sqrt().as_slice(), &[1.0, 2.0]);
        assert_eq!(a.powf(2.0).as_slice(), &[1.0, 16.0]);
        assert!((a.exp().as_slice()[0] - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(
            Tensor::from_vec(vec![-2.0, 2.0], [2]).unwrap().abs().as_slice(),
            &[2.0, 2.0]
        );
        assert_eq!(
            Tensor::from_vec(vec![-2.0, 5.0], [2])
                .unwrap()
                .clamp(0.0, 3.0)
                .as_slice(),
            &[0.0, 3.0]
        );
    }

    #[test]
    fn norms_and_dot() {
        let a = Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap();
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert!(a.dot(&Tensor::ones([3])).is_err());
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0], [2]).unwrap();
        assert!(a.allclose(&b, 1e-6));
        assert!(!a.allclose(&b, 1e-9));
        assert!(!a.allclose(&Tensor::ones([3]), 1.0));
    }

    #[test]
    fn reduce_broadcast_sums_over_expanded_axes() {
        // grad of shape [2,3]; original shape [3] -> sum over rows.
        let g = Tensor::arange(6).reshape([2, 3]).unwrap();
        let r = reduce_broadcast(&g, &Shape::from([3])).unwrap();
        assert_eq!(r.as_slice(), &[3.0, 5.0, 7.0]);
        // original shape [2,1] -> sum over columns.
        let r2 = reduce_broadcast(&g, &Shape::from([2, 1])).unwrap();
        assert_eq!(r2.as_slice(), &[3.0, 12.0]);
        // scalar: sum everything.
        let r3 = reduce_broadcast(&g, &Shape::scalar()).unwrap();
        assert_eq!(r3.item(), 15.0);
        assert!(reduce_broadcast(&g, &Shape::from([4])).is_err());
    }

    #[test]
    fn relu_family() {
        let x = Tensor::from_vec(vec![-2.0, -0.0, 0.0, 3.0, f32::NAN], [5]).unwrap();
        let y = x.relu();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 3.0, 0.0]);
        assert_eq!(y.as_slice()[1].to_bits(), 0.0f32.to_bits(), "-0.0 -> +0.0");

        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], [5]).unwrap();
        let dy = y.relu_backward(&g).unwrap();
        assert_eq!(dy.as_slice(), &[0.0, 0.0, 0.0, 4.0, 0.0]);
        assert!(y.relu_backward(&Tensor::ones([4])).is_err());

        let ly = x.leaky_relu(0.1);
        assert_eq!(&ly.as_slice()[..4], &[-0.2, 0.0, 0.0, 3.0]);
        assert!(ly.as_slice()[4].is_nan(), "leaky relu propagates NaN");
        let ldx = x.leaky_relu_backward(0.1, &g).unwrap();
        assert_eq!(&ldx.as_slice()[..4], &[0.1, 0.2, 0.3, 4.0]);
        assert!(x.leaky_relu_backward(0.1, &Tensor::ones([4])).is_err());
    }

    #[test]
    fn fill_inplace() {
        let mut t = Tensor::zeros([2]);
        t.fill(3.0);
        assert_eq!(t.as_slice(), &[3.0, 3.0]);
        let mut u = Tensor::ones([2]);
        u.scale_inplace(4.0);
        assert_eq!(u.as_slice(), &[4.0, 4.0]);
    }
}
