//! Tensor operations, grouped by kind.

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub(crate) mod microkernel;
pub mod plan;
pub mod pool;
pub mod reduce;

pub use elementwise::reduce_broadcast;
