//! The dense, row-major, `f32` tensor type.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used throughout the medsplit
/// workspace: network parameters, activations, gradients and wire payloads
/// are all `Tensor`s. Data is always contiguous in row-major order, which
/// keeps serialisation (and therefore the byte accounting the evaluation
/// depends on) trivial and exact.
///
/// ```
/// use medsplit_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), medsplit_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ----- constructors ---------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not match
    /// the element count implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// The 2-D identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Evenly spaced values `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape::from([n]),
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    // ----- accessors ------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice; shorthand for `self.shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index/rank errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index/rank errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with {} elements", self.numel());
        self.data[0]
    }

    // ----- shape manipulation ---------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`reshape`](Self::reshape) that avoids a copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_into(mut self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::from([self.numel()]),
            data: self.data.clone(),
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns rank/index errors for invalid inputs.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "row",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        if i >= r {
            return Err(TensorError::IndexOutOfBounds { index: i, dim: r });
        }
        Ok(Tensor {
            shape: Shape::from([c]),
            data: self.data[i * c..(i + 1) * c].to_vec(),
        })
    }

    /// Stacks rank-`k` tensors along a new leading axis, producing a
    /// rank-`k+1` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inputs disagree in shape
    /// or the input list is empty.
    pub fn stack(tensors: &[Tensor]) -> Result<Tensor> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::Corrupt("stack of zero tensors".into()))?;
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first.dims());
        let mut data = Vec::with_capacity(first.numel() * tensors.len());
        for t in tensors {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: t.shape.clone(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&t.data);
        }
        Ok(Tensor {
            shape: Shape::from(dims),
            data,
        })
    }

    /// Concatenates tensors along axis 0. Inputs must agree on all trailing
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on disagreement or an empty
    /// input list.
    pub fn concat0(tensors: &[Tensor]) -> Result<Tensor> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::Corrupt("concat of zero tensors".into()))?;
        let tail = &first.dims()[1..];
        let mut rows = 0;
        let mut data = Vec::new();
        for t in tensors {
            if t.rank() != first.rank() || &t.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: t.shape.clone(),
                    op: "concat0",
                });
            }
            rows += t.dims()[0];
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![rows];
        dims.extend_from_slice(tail);
        Ok(Tensor {
            shape: Shape::from(dims),
            data,
        })
    }

    /// Slices `count` entries along axis 0 starting at `start`, copying.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the range exceeds the
    /// leading dimension.
    pub fn slice0(&self, start: usize, count: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "slice0",
            });
        }
        let n0 = self.dims()[0];
        if start + count > n0 {
            return Err(TensorError::IndexOutOfBounds {
                index: start + count,
                dim: n0,
            });
        }
        let inner: usize = self.dims()[1..].iter().product();
        let mut dims = vec![count];
        dims.extend_from_slice(&self.dims()[1..]);
        Ok(Tensor {
            shape: Shape::from(dims),
            data: self.data[start * inner..(start + count) * inner].to_vec(),
        })
    }

    /// Selects the rows (entries along axis 0) at `indices`, copying.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for any invalid index.
    pub fn index_select0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "index_select0",
            });
        }
        let n0 = self.dims()[0];
        let inner: usize = self.dims()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            if i >= n0 {
                return Err(TensorError::IndexOutOfBounds { index: i, dim: n0 });
            }
            data.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.dims()[1..]);
        Ok(Tensor {
            shape: Shape::from(dims),
            data,
        })
    }

    // ----- functional helpers ----------------------------------------------

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ (no
    /// broadcasting; use the arithmetic ops for that).
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "zip_map",
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .., {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.numel()
            )
        }
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor {
            shape: Shape::from([0]),
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones([3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full([2], 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], [2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], [2, 3]).is_ok());
    }

    #[test]
    fn get_set() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.as_slice()[5], 5.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        assert_eq!(t.dims(), &[2, 3]);
        let back = t.reshape([6]).unwrap();
        assert_eq!(back.as_slice(), Tensor::arange(6).as_slice());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(Tensor::arange(3).transpose().is_err());
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::ones([2, 2]);
        let b = Tensor::zeros([2, 2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2, 2]);
        let c = Tensor::concat0(&[a, b]).unwrap();
        assert_eq!(c.dims(), &[4, 2]);
        assert_eq!(c.as_slice()[..4], [1.0; 4]);
        assert_eq!(c.as_slice()[4..], [0.0; 4]);
    }

    #[test]
    fn stack_rejects_mismatch() {
        let a = Tensor::ones([2]);
        let b = Tensor::ones([3]);
        assert!(Tensor::stack(&[a.clone(), b.clone()]).is_err());
        assert!(Tensor::concat0(&[a.reshape([1, 2]).unwrap(), b.reshape([1, 3]).unwrap()]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn slice0_and_select() {
        let t = Tensor::arange(12).reshape([4, 3]).unwrap();
        let s = t.slice0(1, 2).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.as_slice(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let sel = t.index_select0(&[3, 0]).unwrap();
        assert_eq!(sel.as_slice(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0]);
        assert!(t.slice0(3, 2).is_err());
        assert!(t.index_select0(&[4]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let t = Tensor::arange(3);
        assert_eq!(t.map(|x| x * 2.0).as_slice(), &[0.0, 2.0, 4.0]);
        let u = Tensor::ones([3]);
        assert_eq!(t.zip_map(&u, |a, b| a + b).unwrap().as_slice(), &[1.0, 2.0, 3.0]);
        assert!(t.zip_map(&Tensor::ones([4]), |a, _| a).is_err());
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        assert_eq!(t.row(1).unwrap().as_slice(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros([2])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros([100])).is_empty());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
