//! Random tensor constructors and neural-network weight initialisers.
//!
//! Every constructor takes an explicit `&mut impl Rng` so that every
//! experiment in the workspace is reproducible from a single seed — the
//! split-learning protocol requires all platforms to start from *identical*
//! `L1` weights, which we get by seeding each platform's initialiser with
//! the same value.

use rand::Rng;
use rand::SeedableRng;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// The deterministic RNG used throughout the workspace.
pub type StdRng = rand::rngs::StdRng;

/// Creates the workspace-standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard normal value via Box–Muller.
fn sample_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

impl Tensor {
    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.gen::<f32>() * (hi - lo) + lo).collect();
        Tensor::from_vec(data, shape).expect("generated data matches shape")
    }

    /// Normal samples with the given mean and standard deviation.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| sample_normal(rng) * std + mean).collect();
        Tensor::from_vec(data, shape).expect("generated data matches shape")
    }
}

/// Fan-in/fan-out of a parameter tensor.
///
/// For matrices `[out, in]` this is `(in, out)`; for `OIHW` convolution
/// filters the kernel area multiplies both fans, matching the PyTorch
/// convention.
pub fn fan_in_out(shape: &Shape) -> (usize, usize) {
    let d = shape.dims();
    match d.len() {
        0 => (1, 1),
        1 => (d[0], d[0]),
        2 => (d[1], d[0]),
        _ => {
            let receptive: usize = d[2..].iter().product();
            (d[1] * receptive, d[0] * receptive)
        }
    }
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let (fan_in, fan_out) = fan_in_out(&shape);
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Kaiming/He normal initialisation for ReLU networks:
/// `N(0, sqrt(2 / fan_in))`.
pub fn kaiming_normal(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let (fan_in, _) = fan_in_out(&shape);
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::rand_normal(shape, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut r1 = rng_from_seed(7);
        let mut r2 = rng_from_seed(7);
        let a = Tensor::rand_uniform([4, 4], -1.0, 1.0, &mut r1);
        let b = Tensor::rand_uniform([4, 4], -1.0, 1.0, &mut r2);
        assert_eq!(a, b);
        let c = Tensor::rand_uniform([4, 4], -1.0, 1.0, &mut r1);
        assert_ne!(a, c, "consecutive draws must differ");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = rng_from_seed(1);
        let t = Tensor::rand_uniform([1000], 2.0, 3.0, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(2);
        let t = Tensor::rand_normal([20000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn fan_computation() {
        assert_eq!(fan_in_out(&Shape::from([10, 5])), (5, 10));
        assert_eq!(fan_in_out(&Shape::from([8, 3, 3, 3])), (27, 72));
        assert_eq!(fan_in_out(&Shape::from([4])), (4, 4));
        assert_eq!(fan_in_out(&Shape::scalar()), (1, 1));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = rng_from_seed(3);
        let t = xavier_uniform([10, 5], &mut rng);
        let a = (6.0f32 / 15.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn kaiming_std() {
        let mut rng = rng_from_seed(4);
        let t = kaiming_normal([100, 200], &mut rng);
        let std = (t.norm_sq() / t.numel() as f32).sqrt();
        let expected = (2.0f32 / 200.0).sqrt();
        assert!((std - expected).abs() < expected * 0.2, "std {std} vs {expected}");
    }
}
