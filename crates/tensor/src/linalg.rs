//! Small dense linear-algebra routines.
//!
//! These support the privacy evaluation (ridge-regression reconstruction
//! attacks solve a symmetric positive-definite system via Cholesky) and are
//! not intended as a general-purpose LAPACK replacement.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Cholesky factorisation of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-square inputs and
/// [`TensorError::Numerical`] if the matrix is not positive definite.
pub fn cholesky(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || a.dims()[0] != a.dims()[1] {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
            op: "cholesky",
        });
    }
    let n = a.dims()[0];
    let src = a.as_slice();
    let mut l = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = src[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::Numerical(format!(
                        "matrix not positive definite at pivot {i} (value {sum})"
                    )));
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Tensor::from_vec(l, [n, n])
}

/// Solves `A · X = B` for symmetric positive-definite `A` via Cholesky.
/// `B` may have multiple right-hand-side columns.
///
/// # Errors
///
/// Propagates factorisation errors and shape mismatches.
pub fn solve_spd(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let l = cholesky(a)?;
    let n = l.dims()[0];
    if b.rank() != 2 || b.dims()[0] != n {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            op: "solve_spd",
        });
    }
    let m = b.dims()[1];
    let lm = l.as_slice();
    // Forward substitution: L · Y = B
    let mut y = b.as_slice().to_vec();
    for i in 0..n {
        for j in 0..i {
            let lij = lm[i * n + j];
            for c in 0..m {
                y[i * m + c] -= lij * y[j * m + c];
            }
        }
        let d = lm[i * n + i];
        for c in 0..m {
            y[i * m + c] /= d;
        }
    }
    // Back substitution: Lᵀ · X = Y
    let mut x = y;
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let lji = lm[j * n + i];
            for c in 0..m {
                x[i * m + c] -= lji * x[j * m + c];
            }
        }
        let d = lm[i * n + i];
        for c in 0..m {
            x[i * m + c] /= d;
        }
    }
    Tensor::from_vec(x, [n, m])
}

/// Ridge regression: returns `W = (XᵀX + λI)⁻¹ Xᵀ Y` for design matrix
/// `X: [n, d]` and targets `Y: [n, t]`; `W` has shape `[d, t]`.
///
/// # Errors
///
/// Propagates shape and numerical errors from the underlying solve.
pub fn ridge_regression(x: &Tensor, y: &Tensor, lambda: f32) -> Result<Tensor> {
    if x.rank() != 2 || y.rank() != 2 || x.dims()[0] != y.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: y.shape().clone(),
            op: "ridge_regression",
        });
    }
    let d = x.dims()[1];
    let mut gram = x.matmul_tn(x)?; // XᵀX: [d, d]
    for i in 0..d {
        gram.as_mut_slice()[i * d + i] += lambda;
    }
    let xty = x.matmul_tn(y)?; // XᵀY: [d, t]
    solve_spd(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_known() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
        let a = Tensor::from_vec(vec![4.0, 2.0, 2.0, 3.0], [2, 2]).unwrap();
        let l = cholesky(&a).unwrap();
        assert!((l.get(&[0, 0]).unwrap() - 2.0).abs() < 1e-6);
        assert!((l.get(&[1, 0]).unwrap() - 1.0).abs() < 1e-6);
        assert!((l.get(&[1, 1]).unwrap() - 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(l.get(&[0, 1]).unwrap(), 0.0);
        // Reconstruct A = L·Lᵀ
        let back = l.matmul_nt(&l).unwrap();
        assert!(back.allclose(&a, 1e-5));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 1.0], [2, 2]).unwrap();
        assert!(matches!(cholesky(&a), Err(TensorError::Numerical(_))));
        assert!(cholesky(&Tensor::ones([2, 3])).is_err());
    }

    #[test]
    fn solve_spd_identity() {
        let a = Tensor::eye(3);
        let b = Tensor::arange(6).reshape([3, 2]).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.allclose(&b, 1e-6));
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Tensor::from_vec(vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0], [3, 3]).unwrap();
        let x_true = Tensor::from_vec(vec![1.0, -2.0, 0.5], [3, 1]).unwrap();
        let b = a.matmul(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.allclose(&x_true, 1e-4), "{x:?}");
        assert!(solve_spd(&a, &Tensor::ones([2, 1])).is_err());
    }

    #[test]
    fn ridge_recovers_linear_map() {
        // Y = X · W_true with more rows than columns; tiny lambda.
        let mut rng = crate::init::rng_from_seed(11);
        let x = Tensor::rand_uniform([50, 4], -1.0, 1.0, &mut rng);
        let w_true = Tensor::rand_uniform([4, 2], -1.0, 1.0, &mut rng);
        let y = x.matmul(&w_true).unwrap();
        let w = ridge_regression(&x, &y, 1e-6).unwrap();
        assert!(w.allclose(&w_true, 1e-2), "{w:?} vs {w_true:?}");
    }

    #[test]
    fn ridge_shape_check() {
        assert!(ridge_regression(&Tensor::ones([5, 2]), &Tensor::ones([4, 1]), 0.1).is_err());
    }
}
