//! # medsplit-tensor
//!
//! Dense, row-major `f32` tensors with exactly the operations the medsplit
//! workspace needs to reproduce *Privacy-Preserving Deep Learning
//! Computation for Geo-Distributed Medical Big-Data Platforms* (DSN 2019):
//!
//! - [`Tensor`] — the single numeric container (parameters, activations,
//!   gradients, wire payloads),
//! - NumPy-style broadcasting arithmetic ([`Tensor::try_add`] & friends),
//! - matrix kernels ([`Tensor::matmul`], fused-transpose variants),
//! - convolution & pooling ([`ops::conv`], [`ops::pool`]) with exact
//!   backward passes,
//! - a persistent worker pool ([`pool`], sized by `MEDSPLIT_THREADS`)
//!   and a zero-steady-state-allocation scratch arena ([`scratch`])
//!   backing every hot kernel,
//! - seeded initialisers ([`init`]),
//! - a byte-exact wire format ([`Tensor::to_bytes`]) that the evaluation's
//!   communication accounting is built on,
//! - a small SPD solver ([`linalg`]) for the privacy reconstruction attack.
//!
//! ```
//! use medsplit_tensor::{init, Tensor};
//!
//! let mut rng = init::rng_from_seed(42);
//! let w = init::xavier_uniform([8, 4], &mut rng);
//! let x = Tensor::rand_normal([4], 0.0, 1.0, &mut rng);
//! let y = w.matvec(&x)?;
//! assert_eq!(y.dims(), &[8]);
//! # Ok::<(), medsplit_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

mod error;
pub mod half;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod pool;
pub mod scratch;
mod serialize;
mod shape;
pub mod simd;
mod tensor;

pub use error::{Result, TensorError};
pub use ops::conv::Conv2dSpec;
pub use ops::plan::{Blocking, ConvGeometry, ConvPlan, GemmPlan, PlanKind, PlanStats, WeightPrecision};
pub use serialize::{serialized_len, serialized_len_f16, serialized_len_i8};
pub use shape::Shape;
pub use tensor::Tensor;
