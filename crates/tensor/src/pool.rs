//! Persistent worker pool for data-parallel kernels.
//!
//! All parallel tensor kernels (GEMM row-panels, conv/pool batch axes,
//! large elementwise ops) funnel through [`parallel_for`], which fans a
//! task range out over a process-wide pool of persistent worker threads.
//! Design points:
//!
//! - **Sizing.** The pool size is `MEDSPLIT_THREADS` if set (clamped to
//!   `1..=64`), otherwise [`std::thread::available_parallelism`]. It can
//!   be changed at runtime with [`set_num_threads`] (the benchmark
//!   harness sweeps it); workers are spawned lazily, so a process that
//!   never runs with more than one thread never spawns any.
//! - **Deterministic fallback.** With one thread, [`parallel_for`] runs
//!   every task inline on the caller with no pool machinery at all. More
//!   importantly, task *decomposition* is chosen by the kernels from
//!   shapes alone (fixed panel/chunk sizes), never from the thread
//!   count, and tasks write disjoint output regions — so results are
//!   bit-identical across any `MEDSPLIT_THREADS` value.
//! - **No nesting.** A task that itself calls [`parallel_for`] (e.g. a
//!   per-image conv task invoking a GEMM) runs the inner range inline,
//!   which avoids both deadlock and oversubscription while still
//!   parallelising whichever level is outermost.
//! - **Work distribution.** Tasks are claimed from a shared atomic
//!   counter, so an uneven panel costs no idle time; the caller
//!   participates instead of blocking. Jobs reach workers over the
//!   vendored `crossbeam` MPMC channel.
//!
//! Safety: the dispatched closure reference is lifetime-erased to cross
//! the channel, which is sound because [`parallel_for`] never returns
//! (or unwinds) before every helper has finished the job — enforced by a
//! drop guard around the completion latch.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Hard cap on the pool size; far above any host this targets.
const MAX_THREADS: usize = 64;

/// Configured thread count; 0 means "not yet resolved".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set on pool workers so nested `parallel_for` calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    match std::env::var("MEDSPLIT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n.min(MAX_THREADS),
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_THREADS),
    }
}

/// The number of threads parallel kernels currently target.
///
/// Resolved on first use from `MEDSPLIT_THREADS` (or the host's available
/// parallelism) and changeable afterwards with [`set_num_threads`].
pub fn num_threads() -> usize {
    let n = CONFIGURED.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let d = default_threads();
    // Racing initialisers all compute the same value, so a plain CAS is
    // enough; whoever loses just rereads.
    let _ = CONFIGURED.compare_exchange(0, d, Ordering::Relaxed, Ordering::Relaxed);
    CONFIGURED.load(Ordering::Relaxed)
}

/// Overrides the target thread count (clamped to `1..=64`).
///
/// Takes effect on the next [`parallel_for`] call; existing workers are
/// kept (idle workers cost nothing), new ones are spawned on demand.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Shared state of one dispatched job.
struct JobState {
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// One past the last task index.
    total: usize,
    /// Helpers that have not yet finished the job.
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

struct Job {
    /// Lifetime-erased reference to the task closure; sound because the
    /// dispatching `parallel_for` is latched until every helper finished
    /// (see module docs).
    task: &'static (dyn Fn(usize) + Sync),
    state: Arc<JobState>,
}

struct Pool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        Pool {
            tx,
            rx,
            spawned: Mutex::new(0),
        }
    })
}

fn ensure_workers(p: &'static Pool, want: usize) {
    let mut spawned = p.spawned.lock().unwrap();
    while *spawned < want {
        let rx = p.rx.clone();
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("medsplit-worker-{id}"))
            .spawn(move || worker_main(&rx))
            .expect("failed to spawn pool worker");
        *spawned += 1;
    }
}

fn worker_main(rx: &Receiver<Job>) {
    IN_WORKER.with(|f| f.set(true));
    while let Ok(job) = rx.recv() {
        run_tasks(job.task, &job.state);
        let mut rem = job.state.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            job.state.done.notify_all();
        }
    }
}

/// Claims and runs tasks until the shared counter is exhausted.
fn run_tasks(task: &(dyn Fn(usize) + Sync), state: &JobState) {
    loop {
        let t = state.next.fetch_add(1, Ordering::Relaxed);
        if t >= state.total {
            return;
        }
        if catch_unwind(AssertUnwindSafe(|| task(t))).is_err() {
            state.panicked.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs `body(0), body(1), …, body(tasks - 1)` across the pool.
///
/// Tasks may run in any order and on any thread, so the body must only
/// write state it owns (disjoint output regions); the call returns after
/// every task has finished, with all task writes visible to the caller.
/// With a target of one thread — or when called from inside another
/// `parallel_for` task — the range runs inline on the current thread in
/// ascending order.
///
/// # Panics
///
/// Propagates a panic if any task panicked (the original payload is
/// replaced by a generic message on the multi-threaded path).
pub fn parallel_for<F: Fn(usize) + Sync>(tasks: usize, body: F) {
    if tasks == 0 {
        return;
    }
    let threads = num_threads().min(tasks);
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        for t in 0..tasks {
            body(t);
        }
        return;
    }
    let p = pool();
    let helpers = threads - 1;
    ensure_workers(p, helpers);
    medsplit_telemetry::counter_add("pool.jobs", 1);
    medsplit_telemetry::counter_add("pool.tasks", tasks as u64);
    medsplit_telemetry::gauge_set_max("pool.queue_depth", tasks as f64);
    let state = Arc::new(JobState {
        next: AtomicUsize::new(0),
        total: tasks,
        remaining: Mutex::new(helpers),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let wide: &(dyn Fn(usize) + Sync) = &body;
    // SAFETY: erases the borrow's lifetime; the latch below keeps the
    // closure alive for every worker access (see module docs).
    let task: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide) };
    for _ in 0..helpers {
        if p.tx
            .send(Job {
                task,
                state: Arc::clone(&state),
            })
            .is_err()
        {
            panic!("pool channel closed");
        }
    }

    /// Blocks until every helper finished — including during unwinding,
    /// which is what makes the lifetime erasure above sound.
    struct WaitGuard<'a>(&'a JobState);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            let mut rem = self.0.remaining.lock().unwrap();
            while *rem > 0 {
                rem = self.0.done.wait(rem).unwrap();
            }
        }
    }
    let guard = WaitGuard(&state);
    run_tasks(wide, &state);
    drop(guard);
    if state.panicked.load(Ordering::Relaxed) {
        panic!("parallel_for: a task panicked");
    }
}

/// Runs `body` once on the calling thread and once on **every** spawned
/// pool worker — not just the workers the current thread target would
/// use. A barrier inside the broadcast keeps each worker pinned until
/// all of them have run the closure, which is what guarantees full
/// coverage: no worker can grab two copies while another sits idle.
///
/// This exists to warm per-thread state, above all the thread-local
/// scratch arena ([`crate::scratch`]): jobs are claimed from a shared
/// channel by *any* spawned worker, so a warm-up that merely runs a
/// kernel once only warms whichever workers happened to win that race.
/// Benchmarks and steady-state-allocation tests call this with the
/// kernel under measurement before the timed region. Nested
/// [`parallel_for`] calls inside `body` run inline on every thread
/// (including the caller), so one broadcast of e.g. a conv forward warms
/// the full nested acquisition pattern on every arena.
pub fn warmup(f: impl Fn() + Sync) {
    // Make sure the workers the current target implies exist, then
    // broadcast to every worker ever spawned (there may be more).
    let threads = num_threads();
    let p = pool();
    ensure_workers(p, threads.saturating_sub(1));
    let spawned = *p.spawned.lock().unwrap();
    if spawned == 0 {
        f();
        return;
    }
    let barrier = Barrier::new(spawned + 1);
    /// Reaches the barrier even if `f` panics on a worker (the panic is
    /// caught by `run_tasks`; without the guard the caller would block
    /// forever waiting for the missing arrival).
    struct ArriveGuard<'a>(&'a Barrier);
    impl Drop for ArriveGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let body = |_t: usize| {
        let _arrive = ArriveGuard(&barrier);
        f();
    };
    let state = Arc::new(JobState {
        next: AtomicUsize::new(0),
        total: spawned,
        remaining: Mutex::new(spawned),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let wide: &(dyn Fn(usize) + Sync) = &body;
    // SAFETY: erases the borrow's lifetime; as in `parallel_for`, the
    // completion latch below keeps the closure alive until every worker
    // has finished its copy.
    let task: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide) };
    for _ in 0..spawned {
        if p.tx
            .send(Job {
                task,
                state: Arc::clone(&state),
            })
            .is_err()
        {
            panic!("pool channel closed");
        }
    }
    // Run `f` locally with the worker flag set so nested parallel_for
    // calls stay inline — the workers are all parked at the barrier and
    // could not help anyway.
    let was_worker = IN_WORKER.with(Cell::get);
    IN_WORKER.with(|w| w.set(true));
    let local = catch_unwind(AssertUnwindSafe(&f));
    IN_WORKER.with(|w| w.set(was_worker));
    barrier.wait();
    let mut rem = state.remaining.lock().unwrap();
    while *rem > 0 {
        rem = state.done.wait(rem).unwrap();
    }
    drop(rem);
    if let Err(payload) = local {
        std::panic::resume_unwind(payload);
    }
    if state.panicked.load(Ordering::Relaxed) {
        panic!("pool::warmup: the warm-up closure panicked on a worker");
    }
}

/// Splits `data` into fixed-size chunks and runs `body(chunk_idx, chunk)`
/// for each across the pool. The chunk size must not depend on the thread
/// count if deterministic results are wanted (every kernel here passes a
/// shape-derived constant).
///
/// # Panics
///
/// Panics if `chunk` is zero, or propagates task panics as
/// [`parallel_for`] does.
pub fn parallel_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], chunk: usize, body: F) {
    assert!(chunk > 0, "parallel_chunks_mut: zero chunk size");
    let len = data.len();
    let tasks = len.div_ceil(chunk);
    let raw = RawSliceMut::new(data);
    parallel_for(tasks, |t| {
        let start = t * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: tasks index disjoint `[start, end)` ranges.
        body(t, unsafe { raw.slice(start, end) });
    });
}

/// A `Send + Sync` wrapper around a mutable slice for kernels whose tasks
/// write provably disjoint index ranges (e.g. one output plane per task).
///
/// Obtaining overlapping sub-slices from concurrent tasks is undefined
/// behaviour; every use in this crate derives the ranges from the task
/// index alone.
pub(crate) struct RawSliceMut<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for RawSliceMut<T> {}
unsafe impl<T: Send> Sync for RawSliceMut<T> {}

impl<T> RawSliceMut<T> {
    pub(crate) fn new(slice: &mut [T]) -> Self {
        RawSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Reborrows `[start, end)` mutably.
    ///
    /// # Safety
    ///
    /// No two live reborrows may overlap, and `start <= end <= len`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self, start: usize, end: usize) -> &mut [T] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate the global thread count.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn inline_path_is_sequential_and_ordered() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(1);
        let order = Mutex::new(Vec::new());
        parallel_for(5, |t| order.lock().unwrap().push(t));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn all_tasks_run_exactly_once_multithreaded() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(97, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        set_num_threads(1);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_cover_slice_disjointly() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(3);
        let mut data = vec![0u32; 1000];
        parallel_chunks_mut(&mut data, 64, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + idx as u32;
            }
        });
        set_num_threads(1);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 64) as u32, "at {i}");
        }
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(4);
        let total = AtomicUsize::new(0);
        parallel_for(8, |_| {
            // Inner call must not deadlock and must still run all tasks.
            parallel_for(16, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        set_num_threads(1);
        assert_eq!(total.load(Ordering::Relaxed), 8 * 16);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(2);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(8, |t| {
                if t == 3 {
                    panic!("task boom");
                }
            });
        }));
        assert!(boom.is_err());
        // The pool still works afterwards.
        let n = AtomicUsize::new(0);
        parallel_for(8, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        set_num_threads(1);
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn warmup_covers_every_spawned_worker_and_the_caller() {
        let _g = LOCK.lock().unwrap();
        // Spawn three helpers, then shrink the logical target: warmup
        // must still reach all spawned workers, not just the target's.
        set_num_threads(4);
        parallel_for(8, |_| {});
        set_num_threads(2);
        let ids = Mutex::new(std::collections::HashSet::new());
        warmup(|| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        set_num_threads(1);
        assert!(
            ids.lock().unwrap().len() >= 4,
            "warmup reached only {} threads",
            ids.lock().unwrap().len()
        );
    }

    #[test]
    fn warmup_runs_nested_parallel_for_inline() {
        let _g = LOCK.lock().unwrap();
        set_num_threads(2);
        parallel_for(4, |_| {});
        let total = AtomicUsize::new(0);
        // Workers are parked at the warmup barrier; a nested parallel_for
        // must run inline everywhere or this deadlocks.
        warmup(|| {
            parallel_for(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        set_num_threads(1);
        // Caller + at least one worker each ran all four nested tasks.
        assert!(total.load(Ordering::Relaxed) >= 8);
    }

    #[test]
    fn env_override_respects_bounds() {
        // Not touching the env here (process-global); just the clamp.
        let _g = LOCK.lock().unwrap();
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(10_000);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(1);
    }
}
