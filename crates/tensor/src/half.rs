//! IEEE 754 binary16 (half-precision) conversion, implemented from the
//! bit layout — used by the compressed wire format that halves the split
//! protocol's activation traffic.

/// Converts an `f32` to its binary16 bit pattern with round-to-nearest-even.
///
/// Overflow saturates to ±infinity; values below the smallest subnormal
/// flush to ±0; NaNs stay NaNs.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Infinity or NaN; keep NaNs signalling-agnostic with a set bit.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;
    if half_exp >= 0x1F {
        return sign | 0x7C00; // overflow → ±inf
    }
    if half_exp <= 0 {
        // Subnormal half (or zero).
        if half_exp < -10 {
            return sign; // underflow → ±0
        }
        let full_mant = mant | 0x80_0000;
        let shift = (14 - half_exp) as u32;
        let half_mant = full_mant >> shift;
        let round_bit = 1u32 << (shift - 1);
        let lower = full_mant & (round_bit - 1);
        let mut h = half_mant;
        if (full_mant & round_bit) != 0 && (lower != 0 || (half_mant & 1) != 0) {
            h += 1;
        }
        return sign | h as u16;
    }
    let mut half = ((half_exp as u32) << 10) | (mant >> 13);
    let round = mant & 0x1FFF;
    if round > 0x1000 || (round == 0x1000 && (half & 1) != 0) {
        half += 1; // may carry into the exponent, which is correct
    }
    sign | half as u16
}

/// Converts a binary16 bit pattern back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal: value = mant × 2⁻²⁴. Renormalise into f32 with
            // biased exponent 113 - s, where s shifts the leading bit to
            // position 10.
            let mut s = 0u32;
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                s += 1;
            }
            m &= 0x3FF;
            sign | ((113 - s) << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for &v in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.000061035156f32,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back, v, "{v} -> {back}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f32_to_f16_bits(1e6), 0x7C00);
        assert_eq!(f32_to_f16_bits(-1e6), 0xFC00);
        assert!(f16_bits_to_f32(0x7C00).is_infinite());
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000);
        assert_eq!(f32_to_f16_bits(-1e-10), 0x8000);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn infinity_roundtrips() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
    }

    /// Every one of the 63488 non-NaN f16 bit patterns must survive a
    /// f16 → f32 → f16 round trip unchanged.
    #[test]
    fn all_f16_values_roundtrip_exactly() {
        for h in 0u16..=u16::MAX {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(f)).is_nan());
                continue;
            }
            let back = f32_to_f16_bits(f);
            assert_eq!(back, h, "bit pattern 0x{h:04X} -> {f} -> 0x{back:04X}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-11 is exactly between 1.0 and the next f16 (1.0 + 2^-10):
        // round-to-even picks 1.0 (even mantissa).
        let midpoint = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(midpoint), f32_to_f16_bits(1.0));
        // Slightly above the midpoint rounds up.
        let above = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(above)), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut x = 1e-3f32;
        while x < 6e4 {
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            let rel = ((y - x) / x).abs();
            assert!(rel < 1e-3, "x {x}: rel err {rel}");
            x *= 1.37;
        }
    }
}
