//! IEEE 754 binary16 (half-precision) conversion, implemented from the
//! bit layout — used by the compressed wire format that halves the split
//! protocol's activation traffic.

/// Converts an `f32` to its binary16 bit pattern with round-to-nearest-even.
///
/// Overflow saturates to ±infinity; values below the smallest subnormal
/// flush to ±0; NaNs stay NaNs.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Infinity or NaN; keep NaNs signalling-agnostic with a set bit.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;
    if half_exp >= 0x1F {
        return sign | 0x7C00; // overflow → ±inf
    }
    if half_exp <= 0 {
        // Subnormal half (or zero).
        if half_exp < -10 {
            return sign; // underflow → ±0
        }
        let full_mant = mant | 0x80_0000;
        let shift = (14 - half_exp) as u32;
        let half_mant = full_mant >> shift;
        let round_bit = 1u32 << (shift - 1);
        let lower = full_mant & (round_bit - 1);
        let mut h = half_mant;
        if (full_mant & round_bit) != 0 && (lower != 0 || (half_mant & 1) != 0) {
            h += 1;
        }
        return sign | h as u16;
    }
    let mut half = ((half_exp as u32) << 10) | (mant >> 13);
    let round = mant & 0x1FFF;
    if round > 0x1000 || (round == 0x1000 && (half & 1) != 0) {
        half += 1; // may carry into the exponent, which is correct
    }
    sign | half as u16
}

/// Converts a binary16 bit pattern back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal: value = mant × 2⁻²⁴. Renormalise into f32 with
            // biased exponent 113 - s, where s shifts the leading bit to
            // position 10.
            let mut s = 0u32;
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                s += 1;
            }
            m &= 0x3FF;
            sign | ((113 - s) << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for &v in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.000061035156f32,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back, v, "{v} -> {back}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f32_to_f16_bits(1e6), 0x7C00);
        assert_eq!(f32_to_f16_bits(-1e6), 0xFC00);
        assert!(f16_bits_to_f32(0x7C00).is_infinite());
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000);
        assert_eq!(f32_to_f16_bits(-1e-10), 0x8000);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn infinity_roundtrips() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
    }

    /// Every one of the 63488 non-NaN f16 bit patterns must survive a
    /// f16 → f32 → f16 round trip unchanged.
    #[test]
    fn all_f16_values_roundtrip_exactly() {
        for h in 0u16..=u16::MAX {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(f)).is_nan());
                continue;
            }
            let back = f32_to_f16_bits(f);
            assert_eq!(back, h, "bit pattern 0x{h:04X} -> {f} -> 0x{back:04X}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-11 is exactly between 1.0 and the next f16 (1.0 + 2^-10):
        // round-to-even picks 1.0 (even mantissa).
        let midpoint = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(midpoint), f32_to_f16_bits(1.0));
        // Slightly above the midpoint rounds up.
        let above = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(above)), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn subnormal_halves_convert_exactly() {
        // Smallest positive f16 subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        assert_eq!(f32_to_f16_bits(-tiny), 0x8001);
        // Largest subnormal: 1023 × 2^-24, one ULP under the smallest
        // normal 2^-14.
        let largest_sub = 1023.0 * 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(largest_sub), 0x03FF);
        assert_eq!(f16_bits_to_f32(0x03FF), largest_sub);
        // Smallest normal sits right above it.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-14)), 0x0400);
    }

    #[test]
    fn subnormal_rounding_ties_go_to_even() {
        let ulp = 2.0f32.powi(-24); // subnormal ULP
                                    // Halfway between 2·ulp and 3·ulp: tie, even mantissa (2) wins.
        assert_eq!(f32_to_f16_bits(2.5 * ulp), 0x0002);
        // Halfway between 3·ulp and 4·ulp: tie, rounds up to even 4.
        assert_eq!(f32_to_f16_bits(3.5 * ulp), 0x0004);
        // Just above a tie rounds up regardless of parity.
        assert_eq!(f32_to_f16_bits(2.5000005 * ulp), 0x0003);
        // Halfway between 0 and the smallest subnormal: tie to even 0.
        assert_eq!(f32_to_f16_bits(0.5 * ulp), 0x0000);
        // The largest-subnormal tie carries into the normal range.
        assert_eq!(f32_to_f16_bits(1023.5 * ulp), 0x0400);
    }

    #[test]
    fn mantissa_rounding_carries_into_exponent() {
        // The largest f32 strictly below 2.0 rounds up across the binade
        // boundary: mantissa overflow must carry into the exponent.
        let just_under_two = f32::from_bits(2.0f32.to_bits() - 1);
        assert_eq!(f32_to_f16_bits(just_under_two), f32_to_f16_bits(2.0));
        // And at the very top of the range the same carry must saturate
        // to infinity: anything above the max-f16 midpoint (65520).
        assert_eq!(f32_to_f16_bits(65520.5), 0x7C00);
        // While the midpoint itself ties to even... the even neighbour
        // is infinity's mantissa pattern, so 65520.0 also overflows —
        // matching IEEE 754 round-to-nearest-even semantics.
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00);
        // Just below the midpoint stays at the max finite value.
        assert_eq!(f32_to_f16_bits(65519.996), 0x7BFF);
        assert_eq!(f16_bits_to_f32(0x7BFF), 65504.0);
    }

    /// A dense sweep of f32 inputs: conversion must agree with the exact
    /// nearest-even reference computed in f64, for normals, subnormals,
    /// ties, and the flush-to-zero band.
    #[test]
    fn dense_sweep_matches_f64_reference() {
        fn reference(x: f32) -> u16 {
            let sign = if x.is_sign_negative() { 0x8000u16 } else { 0 };
            let ax = f64::from(x.abs());
            // Scale into units of the subnormal ULP (2^-24) and round
            // half-to-even; anything ≥ 2048 ULPs is normal territory.
            if ax == 0.0 {
                return sign;
            }
            let max = 65504.0;
            if ax > max {
                // Overflow threshold is the midpoint to the next step.
                let step = 32.0; // ULP at the top binade
                if ax >= max + step / 2.0 {
                    return sign | 0x7C00;
                }
                return sign | 0x7BFF;
            }
            if ax < 2.0f64.powi(-14) {
                let units = ax / 2.0f64.powi(-24);
                let r = round_half_even(units);
                return sign | r as u16; // may carry into exp — correct
            }
            let exp = ax.log2().floor() as i32;
            let exp = exp.clamp(-14, 15);
            let ulp = 2.0f64.powi(exp - 10);
            let units = ax / ulp;
            let r = round_half_even(units);
            let (exp, mant) = if r == 2048 { (exp + 1, 1024u64) } else { (exp, r) };
            if exp > 15 {
                return sign | 0x7C00;
            }
            sign | (((exp + 15) as u16) << 10) | ((mant as u16) & 0x3FF)
        }
        fn round_half_even(x: f64) -> u64 {
            let fl = x.floor();
            let frac = x - fl;
            let base = fl as u64;
            if frac > 0.5 || (frac == 0.5 && base % 2 == 1) {
                base + 1
            } else {
                base
            }
        }
        let mut i: u64 = 0;
        while i <= u32::MAX as u64 {
            let x = f32::from_bits(i as u32);
            if !x.is_nan() && x.is_finite() {
                let got = f32_to_f16_bits(x);
                let want = reference(x);
                assert_eq!(got, want, "f32 bits 0x{i:08X} ({x:e})");
            }
            // Stride coprime with powers of two to hit varied mantissas,
            // exponents, and both signs across ~200k samples.
            i += 20753;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut x = 1e-3f32;
        while x < 6e4 {
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            let rel = ((y - x) / x).abs();
            assert!(rel < 1e-3, "x {x}: rel err {rel}");
            x *= 1.37;
        }
    }
}
