//! Shapes, strides and broadcasting rules.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};

/// The dimensions of a tensor, in row-major (C) order.
///
/// A `Shape` is a thin, cheaply-clonable wrapper around a `Vec<usize>` that
/// centralises element counting, stride computation and NumPy-style
/// broadcasting rules.
///
/// ```
/// use medsplit_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    ///
    /// The stride of the last axis is 1; a rank-0 shape has no strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank`, and
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its
    /// dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
                op: "offset",
            });
        }
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, dim: d });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Broadcasts two shapes together following NumPy rules: shapes are
    /// aligned at the trailing axes; each pair of dimensions must be equal or
    /// one of them must be 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible.
    #[allow(clippy::needless_range_loop)] // aligned dual-indexing is clearer explicit
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        for i in 0..rank {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            dims[i] = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.clone(),
                    rhs: other.clone(),
                    op: "broadcast",
                });
            };
        }
        Ok(Shape(dims))
    }

    /// Whether `self` can be broadcast to exactly `target`.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Ok(b) => &b == target,
            Err(_) => false,
        }
    }

    /// Returns the shape with the given axis removed (used by reductions).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn without_axis(&self, axis: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.0.clone();
        dims.remove(axis);
        Ok(Shape(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_errors() {
        let s = Shape::from([2, 3]);
        assert!(matches!(s.offset(&[0]), Err(TensorError::RankMismatch { .. })));
        assert!(matches!(
            s.offset(&[0, 3]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::from([2, 3]);
        let b = Shape::from([3]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::from([2, 3]));
        let c = Shape::from([2, 1]);
        assert_eq!(a.broadcast(&c).unwrap(), Shape::from([2, 3]));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::from([4, 5]);
        let s = Shape::scalar();
        assert_eq!(a.broadcast(&s).unwrap(), a);
        assert_eq!(s.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::from([2, 3]);
        let b = Shape::from([4]);
        assert!(a.broadcast(&b).is_err());
    }

    #[test]
    fn broadcasts_to_checks_exact_target() {
        let a = Shape::from([1, 3]);
        assert!(a.broadcasts_to(&Shape::from([5, 3])));
        assert!(!a.broadcasts_to(&Shape::from([5, 4])));
        // broadcast([5,3],[1,3]) == [5,3] != [1,3], so the reverse is false.
        assert!(!Shape::from([5, 3]).broadcasts_to(&a));
    }

    #[test]
    fn without_axis() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.without_axis(1).unwrap(), Shape::from([2, 4]));
        assert!(s.without_axis(3).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
