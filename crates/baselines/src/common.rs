//! Shared configuration and helpers for the baseline trainers.

use medsplit_core::{ComputeModel, SplitError};
use medsplit_data::{InMemoryDataset, MinibatchPolicy};
use medsplit_nn::{accuracy, Layer, LrSchedule, Mode, Sequential};

/// Configuration shared by all baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Learning rate schedule.
    pub lr: LrSchedule,
    /// SGD momentum for local optimisers (0 disables).
    pub momentum: f32,
    /// Number of rounds (FedAvg rounds / sync-SGD steps / local epochs).
    pub rounds: usize,
    /// Evaluate every `eval_every` rounds (0 = only at the end).
    pub eval_every: usize,
    /// Seed for model initialisation and samplers.
    pub seed: u64,
    /// Per-platform minibatch policy.
    pub minibatch: MinibatchPolicy,
    /// Compute-time model for the simulated clock.
    pub compute: ComputeModel,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            lr: LrSchedule::Constant(0.05),
            momentum: 0.9,
            rounds: 100,
            eval_every: 10,
            seed: 42,
            minibatch: MinibatchPolicy::Fixed(16),
            compute: ComputeModel::off(),
        }
    }
}

impl BaselineConfig {
    /// Whether round `round` (0-based) is an evaluation round.
    pub fn eval_due(&self, round: usize) -> bool {
        self.eval_every > 0 && (round + 1).is_multiple_of(self.eval_every)
    }
}

/// Evaluates a full model on a test set in inference mode.
///
/// # Errors
///
/// Propagates tensor errors.
pub fn evaluate_model(model: &mut Sequential, test: &InMemoryDataset) -> Result<f32, SplitError> {
    const EVAL_BATCH: usize = 64;
    let n = test.len();
    let mut correct_weighted = 0.0;
    let mut start = 0;
    while start < n {
        let count = EVAL_BATCH.min(n - start);
        let idx: Vec<usize> = (start..start + count).collect();
        let (features, labels) = test.batch(&idx)?;
        let logits = model.forward(&features, Mode::Eval)?;
        correct_weighted += accuracy(&logits, &labels)? * count as f32;
        start += count;
    }
    Ok(correct_weighted / n.max(1) as f32)
}

/// Validates that the shard list is usable.
pub(crate) fn check_shards(shards: &[InMemoryDataset]) -> Result<(), SplitError> {
    if shards.is_empty() {
        return Err(SplitError::Config(
            "at least one platform shard is required".into(),
        ));
    }
    if shards.iter().any(InMemoryDataset::is_empty) {
        return Err(SplitError::Config("platform shards must be non-empty".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::SyntheticTabular;
    use medsplit_nn::MlpConfig;

    #[test]
    fn eval_due_schedule() {
        let mut c = BaselineConfig {
            eval_every: 3,
            ..Default::default()
        };
        assert!(!c.eval_due(0));
        assert!(c.eval_due(2));
        assert!(c.eval_due(5));
        c.eval_every = 0;
        assert!(!c.eval_due(2));
    }

    #[test]
    fn evaluate_model_on_fresh_network_is_chance_level() {
        let test = SyntheticTabular::new(4, 6, 0).generate(80).unwrap();
        let mut model = MlpConfig::small(6, 4).build(0);
        let acc = evaluate_model(&mut model, &test).unwrap();
        assert!((0.0..=0.7).contains(&acc), "untrained accuracy {acc}");
    }

    #[test]
    fn check_shards_validation() {
        assert!(check_shards(&[]).is_err());
        let ds = SyntheticTabular::new(2, 3, 0).generate(4).unwrap();
        assert!(check_shards(&[ds]).is_ok());
    }
}
