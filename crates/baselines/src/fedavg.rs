//! FedAvg (McMahan et al., AISTATS 2017) — the related-work baseline the
//! paper calls "the de facto standard for privacy-preserving deep
//! learning".
//!
//! Per round, every platform downloads the full global model, trains
//! `local_steps` minibatch steps on its shard, and uploads its weights;
//! the server averages the uploads weighted by shard size. Bandwidth is
//! therefore `2 × model size × platforms` per round — the cost the paper's
//! §II criticises.

use medsplit_core::messages::{decode_tensor, tensor_envelope};
use medsplit_core::{Result, RoundRecord, SplitError, TrainingHistory};
use medsplit_data::{BatchSampler, InMemoryDataset};
use medsplit_nn::vectorize::{load_snapshot_vector, snapshot_vector, state_count};
use medsplit_nn::{softmax_cross_entropy, Architecture, Layer, Mode, Optimizer, Sequential, Sgd};
use medsplit_simnet::{MessageKind, NodeId, Transport};
use medsplit_tensor::Tensor;

use crate::common::{check_shards, evaluate_model, BaselineConfig};

/// FedAvg-specific options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedAvgOptions {
    /// Local SGD steps per platform per round (`E` in the paper's terms,
    /// in steps rather than epochs).
    pub local_steps: usize,
}

impl Default for FedAvgOptions {
    fn default() -> Self {
        FedAvgOptions { local_steps: 5 }
    }
}

struct FedAvgPlatform {
    model: Sequential,
    data: InMemoryDataset,
    sampler: BatchSampler,
    optimizer: Sgd,
}

/// Runs FedAvg and returns the training history.
///
/// # Errors
///
/// Returns configuration errors for unusable shards and propagates tensor
/// and transport errors.
pub fn train_fedavg<T: Transport>(
    arch: &Architecture,
    config: &BaselineConfig,
    options: FedAvgOptions,
    shards: Vec<InMemoryDataset>,
    test: &InMemoryDataset,
    transport: &T,
) -> Result<TrainingHistory> {
    check_shards(&shards)?;
    if options.local_steps == 0 {
        return Err(SplitError::Config(
            "FedAvg requires at least one local step".into(),
        ));
    }
    let k = shards.len();
    let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
    let batches = config.minibatch.sizes(&sizes);
    let total_size: f32 = sizes.iter().sum::<usize>() as f32;
    let weights: Vec<f32> = sizes.iter().map(|&n| n as f32 / total_size).collect();

    let mut global = arch.build(config.seed);
    let param_count = global.param_count();
    let snapshot_len = param_count + state_count(&mut global);
    let mut platforms: Vec<FedAvgPlatform> = shards
        .into_iter()
        .zip(&batches)
        .enumerate()
        .map(|(i, (data, &batch))| FedAvgPlatform {
            model: arch.build(config.seed), // overwritten by the first download
            sampler: BatchSampler::new(data.len(), batch, config.seed ^ (i as u64 + 1)),
            data,
            optimizer: Sgd::new(0.01).with_momentum(config.momentum),
        })
        .collect();

    let mut records = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let round_start = std::time::Instant::now();
        let lr = config.lr.lr_at(round);
        let global_params = snapshot_vector(&mut global);
        // Download phase.
        for i in 0..k {
            transport.send(tensor_envelope(
                NodeId::Server,
                NodeId::Platform(i),
                round as u64,
                MessageKind::ModelDown,
                &global_params,
            ))?;
        }
        // Local training phase.
        let mut losses = Vec::with_capacity(k);
        for (i, p) in platforms.iter_mut().enumerate() {
            let env = transport
                .try_recv(NodeId::Platform(i))
                .ok_or_else(|| SplitError::Protocol(format!("platform {i} missed its model download")))?;
            let params = decode_tensor(&env, MessageKind::ModelDown)?;
            load_snapshot_vector(&mut p.model, &params)?;
            p.optimizer.set_learning_rate(lr);
            let mut loss_sum = 0.0;
            for _ in 0..options.local_steps {
                let (features, labels) = p.sampler.next_from(&p.data);
                let logits = p.model.forward(&features, Mode::Train)?;
                let out = softmax_cross_entropy(&logits, &labels)?;
                p.model.backward(&out.grad)?;
                p.optimizer.step_and_zero(&mut p.model);
                loss_sum += out.loss;
            }
            losses.push(loss_sum / options.local_steps as f32);
            transport.stats().advance_clock(
                NodeId::Platform(i),
                config.compute.seconds(
                    config.compute.platform_s_per_msample,
                    p.sampler.batch_size() * options.local_steps,
                    param_count,
                ),
            );
            // Upload phase.
            let updated = snapshot_vector(&mut p.model);
            transport.send(tensor_envelope(
                NodeId::Platform(i),
                NodeId::Server,
                round as u64,
                MessageKind::ModelUp,
                &updated,
            ))?;
        }
        // Aggregation: weighted average of uploads.
        let mut averaged = Tensor::zeros([snapshot_len]);
        for _ in 0..k {
            let env = transport
                .try_recv(NodeId::Server)
                .ok_or_else(|| SplitError::Protocol("server missed a model upload".into()))?;
            let pid = env
                .src
                .platform_index()
                .ok_or_else(|| SplitError::Protocol("model upload from non-platform".into()))?;
            let params = decode_tensor(&env, MessageKind::ModelUp)?;
            averaged.axpy(weights[pid], &params)?;
        }
        load_snapshot_vector(&mut global, &averaged)?;

        let accuracy = if config.eval_due(round) {
            Some(evaluate_model(&mut global, test)?)
        } else {
            None
        };
        let snap = transport.stats().snapshot();
        records.push(RoundRecord {
            round,
            lr,
            mean_loss: losses.iter().sum::<f32>() / losses.len() as f32,
            cumulative_bytes: snap.total_bytes,
            simulated_time_s: snap.makespan_s,
            wall_time_s: round_start.elapsed().as_secs_f64(),
            participants: losses.len(),
            degraded: false,
            accuracy,
        });
    }
    let final_accuracy = evaluate_model(&mut global, test)?;
    if let Some(last) = records.last_mut() {
        last.accuracy = Some(final_accuracy);
    }
    Ok(TrainingHistory {
        method: "fedavg".into(),
        records,
        final_accuracy,
        stats: transport.stats().snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{MemoryTransport, StarTopology};

    fn setup() -> (Architecture, Vec<InMemoryDataset>, InMemoryDataset) {
        let arch = Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        });
        let all = SyntheticTabular::new(3, 6, 0).generate(150).unwrap();
        let train = all.subset(&(0..120).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(120..150).collect::<Vec<_>>()).unwrap();
        let shards = partition(&train, 3, &Partition::Iid, 1).unwrap();
        (arch, shards, test)
    }

    #[test]
    fn fedavg_learns() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = BaselineConfig {
            rounds: 20,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };
        let history = train_fedavg(
            &arch,
            &config,
            FedAvgOptions::default(),
            shards,
            &test,
            &transport,
        )
        .unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn bandwidth_is_two_models_per_platform_per_round() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let rounds = 4;
        let config = BaselineConfig {
            rounds,
            eval_every: 0,
            ..Default::default()
        };
        let history = train_fedavg(
            &arch,
            &config,
            FedAvgOptions { local_steps: 2 },
            shards,
            &test,
            &transport,
        )
        .unwrap();
        let params = arch.param_count();
        let expected = rounds as u64 * medsplit_core::comm::fedavg_round_bytes(3, params);
        assert_eq!(history.stats.total_bytes, expected);
        assert_eq!(history.stats.bytes_of(MessageKind::ModelDown), expected / 2);
        assert_eq!(history.stats.bytes_of(MessageKind::ModelUp), expected / 2);
        // No raw data, no activations.
        assert_eq!(history.stats.bytes_of(MessageKind::RawData), 0);
        assert_eq!(history.stats.bytes_of(MessageKind::Activations), 0);
    }

    #[test]
    fn zero_local_steps_rejected() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = BaselineConfig::default();
        assert!(train_fedavg(
            &arch,
            &config,
            FedAvgOptions { local_steps: 0 },
            shards,
            &test,
            &transport
        )
        .is_err());
    }

    #[test]
    fn weighted_aggregation_respects_shard_sizes() {
        // One platform with most data should dominate the average; verify
        // by checking FedAvg still learns under heavy imbalance.
        let arch = Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        });
        let all = SyntheticTabular::new(3, 6, 2).generate(220).unwrap();
        let train = all.subset(&(0..200).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(200..220).collect::<Vec<_>>()).unwrap();
        let shards = partition(&train, 4, &Partition::PowerLaw { alpha: 2.0 }, 0).unwrap();
        let transport = MemoryTransport::new(StarTopology::new(4));
        let config = BaselineConfig {
            rounds: 20,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };
        let history = train_fedavg(
            &arch,
            &config,
            FedAvgOptions::default(),
            shards,
            &test,
            &transport,
        )
        .unwrap();
        assert!(
            history.final_accuracy > 0.5,
            "accuracy {}",
            history.final_accuracy
        );
    }
}
