//! Local-only training: each platform trains alone on its own shard.
//!
//! This is the status quo the paper's introduction criticises — "each
//! medical platform conducts computations with its own local data, leading
//! to overfitting" — made measurable. No bytes ever cross the network.

use medsplit_core::{Result, RoundRecord, TrainingHistory};
use medsplit_data::{BatchSampler, InMemoryDataset};
use medsplit_nn::{softmax_cross_entropy, Architecture, Layer, Mode, Optimizer, Sequential, Sgd};

use crate::common::{check_shards, evaluate_model, BaselineConfig};

/// Trains one independent model per platform and reports the mean test
/// accuracy across them. Returns `(history, per-platform accuracies)`.
///
/// One "round" is one local step on every platform, so the x-axis is
/// comparable with the federated methods.
///
/// # Errors
///
/// Returns configuration errors for empty shard lists and propagates
/// tensor errors.
pub fn train_local_only(
    arch: &Architecture,
    config: &BaselineConfig,
    shards: &[InMemoryDataset],
    test: &InMemoryDataset,
) -> Result<(TrainingHistory, Vec<f32>)> {
    check_shards(shards)?;
    let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
    let batches = config.minibatch.sizes(&sizes);
    let mut models: Vec<Sequential> = (0..shards.len())
        .map(|i| arch.build(config.seed.wrapping_add(i as u64)))
        .collect();
    let mut samplers: Vec<BatchSampler> = shards
        .iter()
        .zip(&batches)
        .enumerate()
        .map(|(i, (shard, &b))| BatchSampler::new(shard.len(), b, config.seed ^ (i as u64 + 1)))
        .collect();
    let mut optims: Vec<Sgd> = (0..shards.len())
        .map(|_| Sgd::new(0.01).with_momentum(config.momentum))
        .collect();

    let mut records = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let round_start = std::time::Instant::now();
        let lr = config.lr.lr_at(round);
        let mut losses = Vec::with_capacity(shards.len());
        for ((model, sampler), (opt, shard)) in models
            .iter_mut()
            .zip(&mut samplers)
            .zip(optims.iter_mut().zip(shards))
        {
            opt.set_learning_rate(lr);
            let (features, labels) = sampler.next_from(shard);
            let logits = model.forward(&features, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &labels)?;
            model.backward(&out.grad)?;
            opt.step_and_zero(model);
            losses.push(out.loss);
        }
        let accuracy = if config.eval_due(round) {
            let mut total = 0.0;
            for model in &mut models {
                total += evaluate_model(model, test)?;
            }
            Some(total / models.len() as f32)
        } else {
            None
        };
        records.push(RoundRecord {
            round,
            lr,
            mean_loss: losses.iter().sum::<f32>() / losses.len() as f32,
            cumulative_bytes: 0,
            simulated_time_s: 0.0,
            wall_time_s: round_start.elapsed().as_secs_f64(),
            participants: losses.len(),
            degraded: false,
            accuracy,
        });
    }

    let mut per_platform = Vec::with_capacity(models.len());
    for model in &mut models {
        per_platform.push(evaluate_model(model, test)?);
    }
    let final_accuracy = per_platform.iter().sum::<f32>() / per_platform.len() as f32;
    if let Some(last) = records.last_mut() {
        last.accuracy = Some(final_accuracy);
    }
    let history = TrainingHistory {
        method: "local_only".into(),
        records,
        final_accuracy,
        stats: medsplit_simnet::NetStats::new().snapshot(),
    };
    Ok((history, per_platform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};

    fn setup() -> (Architecture, Vec<InMemoryDataset>, InMemoryDataset) {
        let arch = Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        });
        let all = SyntheticTabular::new(3, 6, 0).generate(150).unwrap();
        let train = all.subset(&(0..120).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(120..150).collect::<Vec<_>>()).unwrap();
        let shards = partition(&train, 3, &Partition::Iid, 1).unwrap();
        (arch, shards, test)
    }

    #[test]
    fn local_training_learns_but_sends_nothing() {
        let (arch, shards, test) = setup();
        let config = BaselineConfig {
            rounds: 50,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };
        let (history, per_platform) = train_local_only(&arch, &config, &shards, &test).unwrap();
        assert!(
            history.final_accuracy > 0.5,
            "accuracy {}",
            history.final_accuracy
        );
        assert_eq!(history.stats.total_bytes, 0);
        assert_eq!(per_platform.len(), 3);
        assert_eq!(history.records.len(), 50);
        assert!(history.records.iter().all(|r| r.cumulative_bytes == 0));
    }

    #[test]
    fn non_iid_local_models_are_worse_than_iid() {
        // The motivation experiment: under label skew, isolated models
        // generalise worse.
        let arch = Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        });
        let all = SyntheticTabular::new(3, 6, 3).generate(240).unwrap();
        let train = all.subset(&(0..200).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(200..240).collect::<Vec<_>>()).unwrap();
        let config = BaselineConfig {
            rounds: 60,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };

        let iid = partition(&train, 4, &Partition::Iid, 0).unwrap();
        let (h_iid, _) = train_local_only(&arch, &config, &iid, &test).unwrap();
        let skewed = partition(&train, 4, &Partition::Dirichlet { alpha: 0.05 }, 0).unwrap();
        let (h_skew, _) = train_local_only(&arch, &config, &skewed, &test).unwrap();
        assert!(
            h_iid.final_accuracy > h_skew.final_accuracy,
            "iid {} should beat skewed {}",
            h_iid.final_accuracy,
            h_skew.final_accuracy
        );
    }

    #[test]
    fn empty_shards_rejected() {
        let (arch, _, test) = setup();
        let config = BaselineConfig::default();
        assert!(train_local_only(&arch, &config, &[], &test).is_err());
    }
}
