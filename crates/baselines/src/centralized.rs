//! Centralised training: the privacy-violating upper bound.
//!
//! All platforms upload their raw patient data to the server once (the
//! transfer the law forbids — counted as [`MessageKind::RawData`]
//! traffic), and the server trains a single model on the union.

use medsplit_core::{Result, RoundRecord, SplitError, TrainingHistory};
use medsplit_data::{BatchSampler, InMemoryDataset};
use medsplit_nn::{softmax_cross_entropy, Architecture, Layer, Mode, Optimizer, Sgd};
use medsplit_simnet::{Envelope, MessageKind, NodeId, Transport};
use medsplit_tensor::Tensor;

use crate::common::{check_shards, evaluate_model, BaselineConfig};

/// Trains one model on the pooled data, after shipping every shard's raw
/// features (and labels) to the server over the transport.
///
/// # Errors
///
/// Returns configuration errors for unusable shards and propagates tensor
/// and transport errors.
pub fn train_centralized<T: Transport>(
    arch: &Architecture,
    config: &BaselineConfig,
    shards: &[InMemoryDataset],
    test: &InMemoryDataset,
    transport: &T,
) -> Result<TrainingHistory> {
    check_shards(shards)?;
    // Raw-data upload: features plus one float per label, per platform.
    for (i, shard) in shards.iter().enumerate() {
        let labels: Vec<f32> = shard.labels().iter().map(|&l| l as f32).collect();
        let n = labels.len();
        let label_tensor = Tensor::from_vec(labels, [n]).map_err(SplitError::from)?;
        transport.send(Envelope::new(
            NodeId::Platform(i),
            NodeId::Server,
            0,
            MessageKind::RawData,
            shard.features().to_bytes(),
        ))?;
        transport.send(Envelope::new(
            NodeId::Platform(i),
            NodeId::Server,
            0,
            MessageKind::RawData,
            label_tensor.to_bytes(),
        ))?;
        // Server consumes the upload (advances its clock past the transfer).
        let _ = transport.try_recv(NodeId::Server);
        let _ = transport.try_recv(NodeId::Server);
    }

    // Pool the shards.
    let features = Tensor::concat0(&shards.iter().map(|s| s.features().clone()).collect::<Vec<_>>())
        .map_err(SplitError::from)?;
    let labels: Vec<usize> = shards.iter().flat_map(|s| s.labels().iter().copied()).collect();
    let pooled = InMemoryDataset::new(features, labels, shards[0].num_classes()).map_err(SplitError::from)?;

    let global_batch: usize = {
        let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
        config.minibatch.sizes(&sizes).iter().sum()
    };
    let mut model = arch.build(config.seed);
    let mut sampler = BatchSampler::new(pooled.len(), global_batch.min(pooled.len()), config.seed);
    let mut opt = Sgd::new(0.01).with_momentum(config.momentum);

    let mut records = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let round_start = std::time::Instant::now();
        let lr = config.lr.lr_at(round);
        opt.set_learning_rate(lr);
        let (batch, batch_labels) = sampler.next_from(&pooled);
        let logits = model.forward(&batch, Mode::Train)?;
        let out = softmax_cross_entropy(&logits, &batch_labels)?;
        model.backward(&out.grad)?;
        opt.step_and_zero(&mut model);
        transport.stats().advance_clock(
            NodeId::Server,
            config.compute.seconds(
                config.compute.server_s_per_msample,
                batch_labels.len(),
                model.param_count(),
            ),
        );
        let accuracy = if config.eval_due(round) {
            Some(evaluate_model(&mut model, test)?)
        } else {
            None
        };
        let snap = transport.stats().snapshot();
        records.push(RoundRecord {
            round,
            lr,
            mean_loss: out.loss,
            cumulative_bytes: snap.total_bytes,
            simulated_time_s: snap.makespan_s,
            wall_time_s: round_start.elapsed().as_secs_f64(),
            participants: 1,
            degraded: false,
            accuracy,
        });
    }
    let final_accuracy = evaluate_model(&mut model, test)?;
    if let Some(last) = records.last_mut() {
        last.accuracy = Some(final_accuracy);
    }
    Ok(TrainingHistory {
        method: "centralized".into(),
        records,
        final_accuracy,
        stats: transport.stats().snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{MemoryTransport, StarTopology};

    fn setup() -> (Architecture, Vec<InMemoryDataset>, InMemoryDataset) {
        let arch = Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        });
        let all = SyntheticTabular::new(3, 6, 0).generate(150).unwrap();
        let train = all.subset(&(0..120).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(120..150).collect::<Vec<_>>()).unwrap();
        let shards = partition(&train, 3, &Partition::Iid, 1).unwrap();
        (arch, shards, test)
    }

    #[test]
    fn centralized_learns_and_uploads_raw_data() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = BaselineConfig {
            rounds: 50,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };
        let history = train_centralized(&arch, &config, &shards, &test, &transport).unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
        let raw = history.stats.bytes_of(MessageKind::RawData);
        assert!(raw > 0, "raw data upload must be counted");
        // Raw upload dominates: it is the entire traffic here.
        assert_eq!(history.stats.total_bytes, raw);
        // The upload is one-time: bytes are flat across rounds.
        assert_eq!(
            history.records[0].cumulative_bytes,
            history.records.last().unwrap().cumulative_bytes
        );
    }

    #[test]
    fn raw_bytes_match_dataset_size() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = BaselineConfig {
            rounds: 1,
            eval_every: 0,
            ..Default::default()
        };
        let history = train_centralized(&arch, &config, &shards, &test, &transport).unwrap();
        let expected: u64 = shards
            .iter()
            .map(|s| {
                let feat =
                    medsplit_tensor::serialized_len(s.features().shape()) + medsplit_simnet::HEADER_BYTES;
                let lab = medsplit_tensor::serialized_len(&medsplit_tensor::Shape::from([s.len()]))
                    + medsplit_simnet::HEADER_BYTES;
                (feat + lab) as u64
            })
            .sum();
        assert_eq!(history.stats.bytes_of(MessageKind::RawData), expected);
    }
}
