//! Large-scale synchronous SGD (Chen et al., 2016) — the paper's Fig. 4
//! comparator, including the backup-worker mechanism.
//!
//! Every step, each platform downloads the current model, computes one
//! minibatch gradient, and pushes the full gradient vector; the server
//! averages the first `k - backup_workers` gradients to arrive (late or
//! lost gradients are discarded, which is what makes the scheme robust to
//! stragglers) and applies one SGD update. Bandwidth per step is
//! `2 × model size × platforms` — far more than the split protocol moves.

use medsplit_core::messages::{decode_tensor, tensor_envelope};
use medsplit_core::{Result, RoundRecord, SplitError, TrainingHistory};
use medsplit_data::{BatchSampler, InMemoryDataset};
use medsplit_nn::vectorize::{
    apply_flat_update, gradient_vector, load_snapshot_vector, set_state_vector, snapshot_vector, state_count,
    state_vector,
};
use medsplit_nn::{softmax_cross_entropy, Architecture, Layer, Mode, Sequential};
use medsplit_simnet::{MessageKind, NodeId, Transport};
use medsplit_tensor::Tensor;

use crate::common::{check_shards, evaluate_model, BaselineConfig};

/// Synchronous-SGD-specific options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncSgdOptions {
    /// Number of backup workers `b`: the server proceeds once `k - b`
    /// gradients have arrived. 0 reproduces fully-synchronous SGD.
    pub backup_workers: usize,
}

struct Worker {
    model: Sequential,
    data: InMemoryDataset,
    sampler: BatchSampler,
}

/// Runs large-scale synchronous SGD and returns the training history.
///
/// Works over any transport; combine with
/// [`FaultyTransport`](medsplit_simnet::FaultyTransport) to exercise the
/// backup-worker path with dead or slow platforms.
///
/// # Errors
///
/// Returns configuration errors (e.g. more backup workers than platforms)
/// and [`SplitError::Protocol`] if fewer than `k - b` gradients arrive in
/// a step.
pub fn train_sync_sgd<T: Transport>(
    arch: &Architecture,
    config: &BaselineConfig,
    options: SyncSgdOptions,
    shards: Vec<InMemoryDataset>,
    test: &InMemoryDataset,
    transport: &T,
) -> Result<TrainingHistory> {
    check_shards(&shards)?;
    let k = shards.len();
    if options.backup_workers >= k {
        return Err(SplitError::Config(format!(
            "{} backup workers leave no required gradients among {k} platforms",
            options.backup_workers
        )));
    }
    let needed = k - options.backup_workers;
    let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
    let batches = config.minibatch.sizes(&sizes);

    let mut global = arch.build(config.seed);
    let param_count = global.param_count();
    let state_len = state_count(&mut global);
    let mut workers: Vec<Worker> = shards
        .into_iter()
        .zip(&batches)
        .enumerate()
        .map(|(i, (data, &batch))| Worker {
            model: arch.build(config.seed),
            sampler: BatchSampler::new(data.len(), batch, config.seed ^ (i as u64 + 1)),
            data,
        })
        .collect();

    let mut records = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let round_start = std::time::Instant::now();
        let lr = config.lr.lr_at(round);
        let global_params = snapshot_vector(&mut global);
        // Model download to every platform.
        for i in 0..k {
            transport.send(tensor_envelope(
                NodeId::Server,
                NodeId::Platform(i),
                round as u64,
                MessageKind::ModelDown,
                &global_params,
            ))?;
        }
        // Each platform computes and pushes one gradient.
        let mut losses = Vec::with_capacity(k);
        for (i, w) in workers.iter_mut().enumerate() {
            // A dead platform's download was dropped by the fault layer;
            // it simply skips the step.
            let Some(env) = transport.try_recv(NodeId::Platform(i)) else {
                continue;
            };
            let params = decode_tensor(&env, MessageKind::ModelDown)?;
            load_snapshot_vector(&mut w.model, &params)?;
            let (features, labels) = w.sampler.next_from(&w.data);
            let logits = w.model.forward(&features, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &labels)?;
            w.model.backward(&out.grad)?;
            losses.push(out.loss);
            // The push carries the gradient plus the worker's updated
            // batch-norm statistics (the parameter server keeps them in
            // sync, as a real deployment's assign ops would).
            let grad = gradient_vector(&mut w.model);
            w.model.zero_grads();
            let push = Tensor::concat0(&[grad, state_vector(&mut w.model)])?;
            transport.stats().advance_clock(
                NodeId::Platform(i),
                config
                    .compute
                    .seconds(config.compute.platform_s_per_msample, labels.len(), param_count),
            );
            transport.send(tensor_envelope(
                NodeId::Platform(i),
                NodeId::Server,
                round as u64,
                MessageKind::GradPush,
                &push,
            ))?;
        }
        // Server: average the first `needed` arrivals, discard the rest.
        let mut averaged = Tensor::zeros([param_count + state_len]);
        let mut received = 0usize;
        while received < needed {
            let Some(env) = transport.try_recv(NodeId::Server) else {
                return Err(SplitError::Protocol(format!(
                    "step {round}: only {received} of {needed} required gradients arrived"
                )));
            };
            let grad = decode_tensor(&env, MessageKind::GradPush)?;
            averaged.axpy(1.0 / needed as f32, &grad)?;
            received += 1;
        }
        // Late gradients (beyond `needed`) are dropped, per Chen et al.
        while transport.try_recv(NodeId::Server).is_some() {}
        let grad_part = averaged.slice0(0, param_count)?;
        apply_flat_update(&mut global, &grad_part, lr)?;
        if state_len > 0 {
            set_state_vector(&mut global, &averaged.slice0(param_count, state_len)?)?;
        }

        let accuracy = if config.eval_due(round) {
            Some(evaluate_model(&mut global, test)?)
        } else {
            None
        };
        let snap = transport.stats().snapshot();
        records.push(RoundRecord {
            round,
            lr,
            mean_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
            cumulative_bytes: snap.total_bytes,
            simulated_time_s: snap.makespan_s,
            wall_time_s: round_start.elapsed().as_secs_f64(),
            participants: losses.len(),
            degraded: false,
            accuracy,
        });
    }
    let final_accuracy = evaluate_model(&mut global, test)?;
    if let Some(last) = records.last_mut() {
        last.accuracy = Some(final_accuracy);
    }
    Ok(TrainingHistory {
        method: "sync_sgd".into(),
        records,
        final_accuracy,
        stats: transport.stats().snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{FaultKind, FaultyTransport, MemoryTransport, StarTopology};

    fn setup() -> (Architecture, Vec<InMemoryDataset>, InMemoryDataset) {
        let arch = Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        });
        let all = SyntheticTabular::new(3, 6, 0).generate(150).unwrap();
        let train = all.subset(&(0..120).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(120..150).collect::<Vec<_>>()).unwrap();
        let shards = partition(&train, 3, &Partition::Iid, 1).unwrap();
        (arch, shards, test)
    }

    #[test]
    fn sync_sgd_learns() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = BaselineConfig {
            rounds: 40,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };
        let history = train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions::default(),
            shards,
            &test,
            &transport,
        )
        .unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn bandwidth_matches_analytic_formula() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let rounds = 3;
        let config = BaselineConfig {
            rounds,
            eval_every: 0,
            ..Default::default()
        };
        let history = train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions::default(),
            shards,
            &test,
            &transport,
        )
        .unwrap();
        let expected = rounds as u64 * medsplit_core::comm::sync_sgd_round_bytes(3, arch.param_count());
        assert_eq!(history.stats.total_bytes, expected);
    }

    #[test]
    fn backup_workers_tolerate_a_dead_platform() {
        let (arch, shards, test) = setup();
        let transport = FaultyTransport::new(MemoryTransport::new(StarTopology::new(3)));
        transport.set_fault(NodeId::Platform(2), FaultKind::Dead);
        let config = BaselineConfig {
            rounds: 30,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            ..Default::default()
        };
        let history = train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions { backup_workers: 1 },
            shards,
            &test,
            &transport,
        )
        .unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn without_backups_a_dead_platform_stalls_training() {
        let (arch, shards, test) = setup();
        let transport = FaultyTransport::new(MemoryTransport::new(StarTopology::new(3)));
        transport.set_fault(NodeId::Platform(0), FaultKind::Dead);
        let config = BaselineConfig {
            rounds: 5,
            eval_every: 0,
            ..Default::default()
        };
        let err = train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions::default(),
            shards,
            &test,
            &transport,
        )
        .unwrap_err();
        assert!(matches!(err, SplitError::Protocol(_)));
    }

    #[test]
    fn too_many_backups_rejected() {
        let (arch, shards, test) = setup();
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = BaselineConfig::default();
        assert!(train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions { backup_workers: 3 },
            shards,
            &test,
            &transport
        )
        .is_err());
    }
}
