//! # medsplit-baselines
//!
//! The comparison landscape of the evaluation, all implemented over the
//! same [`medsplit_simnet`] substrate as the split protocol so byte counts
//! are directly comparable:
//!
//! - [`train_sync_sgd`] — **Large-scale synchronous SGD** (Chen et al.,
//!   2016), the comparator of the paper's Fig. 4, with backup workers;
//! - [`train_fedavg`] — **FedAvg** (McMahan et al., 2017), the
//!   related-work "de facto standard" whose bandwidth cost the paper
//!   criticises;
//! - [`train_local_only`] — each platform alone (the overfitting
//!   motivation);
//! - [`train_centralized`] — pooled raw data at the server (the
//!   privacy-violating upper bound; its one-time raw-data upload is
//!   counted as [`MessageKind::RawData`](medsplit_simnet::MessageKind)
//!   traffic).

#![warn(missing_docs)]

mod centralized;
mod common;
mod fedavg;
mod local_only;
mod sync_sgd;

pub use centralized::train_centralized;
pub use common::{evaluate_model, BaselineConfig};
pub use fedavg::{train_fedavg, FedAvgOptions};
pub use local_only::train_local_only;
pub use sync_sgd::{train_sync_sgd, SyncSgdOptions};
