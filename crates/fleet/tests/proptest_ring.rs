//! Property tests for the consistent-hash ring: routing must be a pure
//! function of the key and the membership (never of process state or
//! insertion history), and membership changes must move roughly `1/N` of
//! the keyspace — the whole point of consistent hashing over modulo
//! sharding.

use medsplit_fleet::{key_hash, HashRing};
use proptest::prelude::*;

const VNODES: usize = 64;

/// Routes a grid of `(tenant, session)` keys, returning the owner per key.
fn route_all(ring: &HashRing, tenants: u64, sessions: u64) -> Vec<usize> {
    let mut owners = Vec::with_capacity((tenants * sessions) as usize);
    for t in 0..tenants {
        for s in 0..sessions {
            owners.push(ring.route(t, s).expect("active ring routes every key"));
        }
    }
    owners
}

proptest! {
    /// Two independently built rings with the same membership agree on
    /// every key — routing is deterministic across processes because the
    /// point hashes are FNV over fixed bytes, not `RandomState`.
    #[test]
    fn routing_is_process_independent(
        replicas in 1usize..12,
        tenants in 1u64..8,
        sessions in 1u64..16,
    ) {
        let a = HashRing::new(replicas, VNODES);
        let b = HashRing::new(replicas, VNODES);
        prop_assert_eq!(
            route_all(&a, tenants, sessions),
            route_all(&b, tenants, sessions)
        );
    }

    /// Adding one replica to an `n`-replica ring moves roughly `1/(n+1)`
    /// of the keyspace: never more than twice the fair share (vnode
    /// variance allows some slack), and every moved key lands on the new
    /// replica — keys never shuffle between surviving replicas.
    #[test]
    fn add_moves_about_one_over_n(n in 2usize..10, salt in 0u64..32) {
        let before = HashRing::new(n, VNODES);
        let mut after = HashRing::new(n, VNODES);
        after.add_replica(n);
        let keys = 4096u64;
        let mut moved = 0usize;
        for k in 0..keys {
            let t = salt.wrapping_mul(1000) + k / 64;
            let s = k % 64;
            let old = before.route(t, s).unwrap();
            let new = after.route(t, s).unwrap();
            if old != new {
                moved += 1;
                prop_assert_eq!(new, n, "moved keys must land on the new replica");
            }
        }
        let fair = keys as f64 / (n + 1) as f64;
        prop_assert!(
            (moved as f64) < 2.0 * fair,
            "moved {} of {} keys; fair share is {:.0}",
            moved, keys, fair
        );
        prop_assert!(moved > 0, "a new replica must take some keys");
    }

    /// Removing one replica only re-homes that replica's keys; everyone
    /// else's assignment is untouched.
    #[test]
    fn remove_moves_only_the_victims_keys(n in 2usize..10, victim_seed in 0usize..100) {
        let before = HashRing::new(n, VNODES);
        let victim = victim_seed % n;
        let mut after = HashRing::new(n, VNODES);
        after.remove_replica(victim);
        for t in 0..16u64 {
            for s in 0..64u64 {
                let old = before.route(t, s).unwrap();
                let new = after.route(t, s).unwrap();
                if old != victim {
                    prop_assert_eq!(old, new, "survivors keep their keys");
                } else {
                    prop_assert_ne!(new, victim);
                }
            }
        }
    }

    /// Deactivating a replica routes its keys to the same successor that
    /// `successor()` reports, and reactivating restores the original map
    /// exactly — drain + rejoin is a routing no-op.
    #[test]
    fn drain_rejoin_round_trips(n in 2usize..8, victim_seed in 0usize..100) {
        let victim = victim_seed % n;
        let mut ring = HashRing::new(n, VNODES);
        let baseline = route_all(&ring, 8, 32);
        ring.set_active(victim, false);
        for t in 0..8u64 {
            for s in 0..32u64 {
                let owner = ring.route(t, s).unwrap();
                prop_assert_ne!(owner, victim);
                let home = ring.home(t, s).unwrap();
                if home == victim {
                    prop_assert_eq!(Some(owner), ring.successor(t, s, victim));
                }
            }
        }
        ring.set_active(victim, true);
        prop_assert_eq!(route_all(&ring, 8, 32), baseline);
    }

    /// The key hash itself is stable: same inputs, same value, and it
    /// feeds routing (documented so the wire pin `key_hash % versions`
    /// stays honest).
    #[test]
    fn key_hash_is_pure(t in 0u64..u64::MAX, s in 0u64..u64::MAX) {
        prop_assert_eq!(key_hash(t, s), key_hash(t, s));
    }
}
