//! medsplit-fleet: sharded multi-tenant split-inference serving.
//!
//! The single-server serving runtime (`medsplit-serve`) batches one
//! node's worth of `L2..Lk` traffic. This crate scales that out: `N`
//! server replicas each own a shard of sessions, fronted by a router
//! that maps `(tenant, session)` onto a replica via a consistent-hash
//! ring with virtual nodes. The router enforces per-tenant admission
//! quotas and pins each session to a weight version from a shared
//! [`ModelBank`](bank::ModelBank); each replica runs the existing
//! dynamic batcher with continuous batching across tenants.
//!
//! Replicas support graceful drain (stop accepting, flush in-flight
//! work, hand session state to ring successors) and rejoin; crashes are
//! exercised under the simnet chaos transport, with the router's
//! in-flight table redispatching orphaned requests so that no admitted
//! request is ever dropped. See [`sim::run_fleet`] for the
//! discrete-event driver and `DESIGN.md` §14 for the protocol.

#![warn(missing_docs)]

pub mod bank;
pub mod config;
pub mod replica;
pub mod ring;
pub mod router;
pub mod session;
pub mod sim;

pub use bank::{ModelBank, ModelFactory};
pub use config::FleetConfig;
pub use replica::{FleetPending, Replica, ReplicaPhase, Served};
pub use ring::{key_hash, HashRing};
pub use router::{InFlight, Router};
pub use session::{decode_sessions, encode_sessions, SessionKey, SessionState};
pub use sim::{
    run_fleet, FleetAction, FleetEvent, FleetOutcome, ReplicaReport, TenantReport, CLASSES, FEATURES,
};
