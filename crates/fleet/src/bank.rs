//! The fleet's model bank: every weight version as a checkpoint blob.
//!
//! Replicas do not share live model objects — each replica lazily
//! instantiates a [`SplitServer`] per weight version from the bank's
//! blobs, exactly as a real fleet pulls checkpoints from a model store.
//! The bank records an FNV digest per version so a replica can prove its
//! restored copy is bit-identical to the bank's (and the bench can prove
//! logits are bit-identical across replica counts).

use bytes::Bytes;
use medsplit_core::{Result, SplitError, SplitServer};
use medsplit_nn::Sequential;
use medsplit_tensor::Tensor;

/// Builds fresh (identically-initialised) server models on demand;
/// [`Sequential`] is not `Clone`, so the bank rebuilds from the factory
/// and then loads the requested version's snapshot.
pub type ModelFactory = Box<dyn Fn() -> Sequential + Send + Sync>;

/// A versioned store of server-side (`L2..Lk`) weight snapshots.
pub struct ModelBank {
    factory: ModelFactory,
    versions: Vec<Bytes>,
    digests: Vec<u64>,
}

impl ModelBank {
    /// Creates a bank with `versions` snapshots. Version 0 is the
    /// factory's weights verbatim; each later version `v` deterministically
    /// perturbs every parameter by the factor `1 + v/100`, standing in for
    /// successive fine-tuning releases. The construction depends only on
    /// the factory and `versions`, never on fleet size, so two fleets with
    /// different replica counts hold bit-identical banks.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from snapshotting.
    pub fn new(factory: ModelFactory, versions: usize) -> Result<Self> {
        assert!(versions >= 1, "a bank needs at least one version");
        let mut base = factory();
        let snapshot = medsplit_nn::vectorize::snapshot_vector(&mut base);
        let mut blobs = Vec::with_capacity(versions);
        let mut digests = Vec::with_capacity(versions);
        for v in 0..versions {
            let scale = 1.0 + v as f32 / 100.0;
            let data: Vec<f32> = snapshot.as_slice().iter().map(|&x| x * scale).collect();
            let n = data.len();
            let vec = Tensor::from_vec(data, [n])?;
            let mut model = factory();
            medsplit_nn::vectorize::load_snapshot_vector(&mut model, &vec)?;
            digests.push(medsplit_nn::vectorize::parameter_digest(&mut model));
            blobs.push(vec.to_bytes());
        }
        Ok(ModelBank {
            factory,
            versions: blobs,
            digests,
        })
    }

    /// Number of stored versions.
    pub fn versions(&self) -> usize {
        self.versions.len()
    }

    /// The snapshot digest of version `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn digest(&self, v: u32) -> u64 {
        self.digests[v as usize]
    }

    /// Instantiates a [`SplitServer`] running version `v`, verifying the
    /// restored weights against the bank's digest.
    ///
    /// The restore bumps every parameter's version counter, so the new
    /// server's layers pack fresh plan-cache panels on their first
    /// forward and then serve them immutably: a pinned weight version
    /// maps to one immutable set of cached plans, with no invalidation
    /// traffic between versions.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::Config`] for an unknown version and protocol
    /// errors if the restored digest disagrees with the bank's.
    pub fn instantiate(&self, v: u32) -> Result<SplitServer> {
        let blob = self
            .versions
            .get(v as usize)
            .ok_or_else(|| SplitError::Config(format!("unknown weight version {v}")))?;
        let mut server = SplitServer::new((self.factory)(), 0.0);
        server.restore(blob)?;
        let digest = server.weights_digest();
        if digest != self.digests[v as usize] {
            return Err(SplitError::Protocol(format!(
                "restored version {v} digest {digest:#x} != bank digest {:#x}",
                self.digests[v as usize]
            )));
        }
        Ok(server)
    }
}

impl std::fmt::Debug for ModelBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBank")
            .field("versions", &self.versions.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_nn::Dense;
    use medsplit_tensor::init::rng_from_seed;

    fn factory() -> ModelFactory {
        Box::new(|| {
            let mut rng = rng_from_seed(17);
            let mut s = Sequential::new("server");
            s.push(Dense::new(4, 3, &mut rng));
            s
        })
    }

    #[test]
    fn versions_are_distinct_and_verified() {
        let bank = ModelBank::new(factory(), 3).unwrap();
        assert_eq!(bank.versions(), 3);
        assert_ne!(bank.digest(0), bank.digest(1));
        assert_ne!(bank.digest(1), bank.digest(2));
        for v in 0..3 {
            let mut server = bank.instantiate(v).unwrap();
            assert_eq!(server.weights_digest(), bank.digest(v));
        }
        assert!(bank.instantiate(3).is_err());
    }

    #[test]
    fn banks_are_reproducible() {
        let a = ModelBank::new(factory(), 2).unwrap();
        let b = ModelBank::new(factory(), 2).unwrap();
        assert_eq!(a.digest(0), b.digest(0));
        assert_eq!(a.digest(1), b.digest(1));
    }

    #[test]
    fn different_versions_change_logits() {
        let bank = ModelBank::new(factory(), 2).unwrap();
        let x = Tensor::full([1, 4], 0.5);
        let y0 = bank.instantiate(0).unwrap().infer(&x).unwrap();
        let y1 = bank.instantiate(1).unwrap().infer(&x).unwrap();
        assert_ne!(y0.as_slice(), y1.as_slice());
    }
}
