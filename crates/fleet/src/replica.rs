//! One server replica: a shard of sessions, a dynamic batcher, and lazily
//! instantiated per-version models.

use std::collections::HashMap;

use medsplit_core::{Result, SplitServer};
use medsplit_serve::{Admission, BatchEntry, DynamicBatcher, RoutedRequest, ServeConfig};
use medsplit_tensor::Tensor;

use crate::bank::ModelBank;
use crate::ring::HashRing;
use crate::session::{SessionKey, SessionState};

/// Replica lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPhase {
    /// Accepting and serving traffic.
    Active,
    /// Graceful drain: no new admissions; in-flight work flushed and
    /// sessions handed to ring successors.
    Draining,
    /// Crashed: queued work and local session state are lost.
    Down,
}

/// A request queued at a replica: the routed frame plus the platform it
/// answers to.
#[derive(Debug, Clone)]
pub struct FleetPending {
    /// Platform (tenant) that submitted the request.
    pub platform: usize,
    /// The routed request (id, timing, routing key, activations).
    pub req: RoutedRequest,
}

/// The outcome of one served entry, with everything the driver needs to
/// answer the client and settle the router's books.
#[derive(Debug, Clone)]
pub struct Served {
    /// Request id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Platform to answer.
    pub platform: usize,
    /// Echoed submission time.
    pub submit_s: f64,
    /// Whether the entry produced logits (false = deadline timeout).
    pub ok: bool,
    /// Logits, present iff `ok`.
    pub logits: Option<Tensor>,
}

/// One server replica of the fleet.
pub struct Replica {
    id: usize,
    phase: ReplicaPhase,
    batcher: DynamicBatcher<FleetPending>,
    /// Per-version model instances, pulled from the bank on first use.
    servers: HashMap<u32, SplitServer>,
    /// Session state for the shard this replica currently owns.
    sessions: HashMap<SessionKey, SessionState>,
    /// Simulated busy clock: when the replica is free to start a batch.
    pub clock: f64,
    /// Total requests served with logits.
    pub served: u64,
}

impl Replica {
    /// A fresh, active replica with the given batching parameters.
    pub fn new(id: usize, serve: &ServeConfig) -> Self {
        Replica {
            id,
            phase: ReplicaPhase::Active,
            batcher: DynamicBatcher::new(serve.max_batch, serve.max_wait_s, serve.queue_capacity),
            servers: HashMap::new(),
            sessions: HashMap::new(),
            clock: 0.0,
            served: 0,
        }
    }

    /// Replica index (its [`NodeId::Replica`](medsplit_simnet::NodeId)
    /// slot).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> ReplicaPhase {
        self.phase
    }

    /// Sets the lifecycle phase.
    pub fn set_phase(&mut self, phase: ReplicaPhase) {
        self.phase = phase;
    }

    /// Number of requests pending in the batcher.
    pub fn queued(&self) -> usize {
        self.batcher.len()
    }

    /// Offers a request to the batcher (the caller has already checked
    /// the phase).
    pub fn offer(&mut self, pending: FleetPending, now_s: f64, deadline_s: f64) -> Admission {
        self.batcher.offer(pending, now_s, deadline_s)
    }

    /// Earliest age-rule flush time, `None` when the queue is empty.
    pub fn ready_at(&self) -> Option<f64> {
        self.batcher.ready_at()
    }

    /// Whether the size rule would flush right now.
    pub fn size_due(&self) -> bool {
        self.batcher.len() >= self.batcher.max_batch()
    }

    /// Takes up to `max_batch` oldest entries.
    pub fn take_batch(&mut self) -> Vec<BatchEntry<FleetPending>> {
        self.batcher.take_batch()
    }

    /// Takes everything pending, ignoring `max_batch` (drain/crash).
    pub fn drain_pending(&mut self) -> Vec<BatchEntry<FleetPending>> {
        self.batcher.drain_all()
    }

    /// Drops all local session state (crash semantics).
    pub fn forget_sessions(&mut self) {
        self.sessions.clear();
    }

    /// Runs the batch's entries through their pinned weight versions and
    /// returns `(serve_done, outcomes)`. Entries are grouped by version —
    /// continuous batching across tenants within a version — and each
    /// group takes one forward pass. Expired entries (deadline before
    /// `serve_done`) are reported with `ok = false` and never inferred.
    ///
    /// # Errors
    ///
    /// Propagates model/bank errors.
    pub fn serve(
        &mut self,
        bank: &ModelBank,
        entries: Vec<BatchEntry<FleetPending>>,
        flush_t: f64,
        serve: &ServeConfig,
    ) -> Result<(f64, Vec<Served>)> {
        if entries.is_empty() {
            return Ok((flush_t, Vec::new()));
        }
        let serve_done = flush_t + serve.batch_setup_s + serve.per_item_s * entries.len() as f64;
        medsplit_telemetry::histogram_observe(
            "fleet.batch_size",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            entries.len() as f64,
        );
        let (live, expired): (Vec<_>, Vec<_>) = entries.into_iter().partition(|e| e.deadline_s >= serve_done);
        let mut outcomes: Vec<Served> = expired
            .into_iter()
            .map(|e| Served {
                id: e.item.req.id,
                tenant: e.item.req.tenant,
                platform: e.item.platform,
                submit_s: e.item.req.submit_s,
                ok: false,
                logits: None,
            })
            .collect();

        // Group by pinned version, ascending, stable within a group.
        let mut versions: Vec<u32> = live.iter().map(|e| e.item.req.version).collect();
        versions.sort_unstable();
        versions.dedup();
        for version in versions {
            let group: Vec<&BatchEntry<FleetPending>> =
                live.iter().filter(|e| e.item.req.version == version).collect();
            let tensors: Vec<Tensor> = group.iter().map(|e| e.item.req.activations.clone()).collect();
            let rows: Vec<usize> = tensors.iter().map(|t| t.dims()[0]).collect();
            let batch = Tensor::concat0(&tensors)?;
            let server = self.server_for(bank, version)?;
            let logits = server.infer(&batch)?;
            let mut offset = 0;
            for (entry, n) in group.into_iter().zip(rows) {
                let slice = logits.slice0(offset, n)?;
                offset += n;
                let key = SessionKey {
                    tenant: entry.item.req.tenant,
                    session: entry.item.req.session,
                };
                let state = self
                    .sessions
                    .entry(key)
                    .or_insert_with(|| SessionState::new(key, version));
                state.served += 1;
                state.last_served_s = serve_done;
                self.served += 1;
                outcomes.push(Served {
                    id: entry.item.req.id,
                    tenant: entry.item.req.tenant,
                    platform: entry.item.platform,
                    submit_s: entry.item.req.submit_s,
                    ok: true,
                    logits: Some(slice),
                });
            }
        }
        medsplit_telemetry::counter_add_labeled(
            "fleet.served",
            &format!("replica-{}", self.id),
            outcomes.iter().filter(|o| o.ok).count() as u64,
        );
        Ok((serve_done, outcomes))
    }

    /// The replica's cached per-version server, instantiated from the
    /// bank on first use. Keeping the instance (rather than rebuilding
    /// per request) also keeps its layers' prepacked plan panels warm:
    /// after the first request against a version, serving never repacks.
    fn server_for(&mut self, bank: &ModelBank, version: u32) -> Result<&mut SplitServer> {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.servers.entry(version) {
            slot.insert(bank.instantiate(version)?);
        }
        Ok(self.servers.get_mut(&version).expect("just inserted"))
    }

    /// Exports and removes every session, for a full drain handoff.
    pub fn export_all_sessions(&mut self) -> Vec<SessionState> {
        let mut out: Vec<SessionState> = self.sessions.drain().map(|(_, s)| s).collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// Exports and removes the sessions whose ring *home* is `home` — the
    /// set a successor hands back when that replica rejoins.
    pub fn export_sessions_homed_to(&mut self, ring: &HashRing, home: usize) -> Vec<SessionState> {
        let keys: Vec<SessionKey> = self
            .sessions
            .keys()
            .filter(|k| ring.home(k.tenant, k.session) == Some(home))
            .copied()
            .collect();
        let mut out: Vec<SessionState> = keys
            .into_iter()
            .filter_map(|k| self.sessions.remove(&k))
            .collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// Imports handed-off sessions. An existing entry for the same key is
    /// merged by summing served counts (the successor may have served the
    /// session while its home was away).
    pub fn import_sessions(&mut self, incoming: Vec<SessionState>) {
        for s in incoming {
            self.sessions
                .entry(s.key)
                .and_modify(|cur| {
                    cur.served += s.served;
                    cur.last_served_s = cur.last_served_s.max(s.last_served_s);
                })
                .or_insert(s);
        }
    }

    /// Read access to the session table (tests, invariant checks).
    pub fn sessions(&self) -> &HashMap<SessionKey, SessionState> {
        &self.sessions
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("phase", &self.phase)
            .field("queued", &self.batcher.len())
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::{ModelBank, ModelFactory};
    use medsplit_nn::{Dense, Sequential};
    use medsplit_tensor::init::rng_from_seed;

    fn factory() -> ModelFactory {
        Box::new(|| {
            let mut rng = rng_from_seed(3);
            let mut s = Sequential::new("server");
            s.push(Dense::new(4, 2, &mut rng));
            s
        })
    }

    fn pending(id: u64, tenant: u64, session: u64, version: u32) -> FleetPending {
        FleetPending {
            platform: tenant as usize,
            req: RoutedRequest {
                id,
                submit_s: 0.0,
                deadline_s: f64::INFINITY,
                tenant,
                session,
                version,
                activations: Tensor::full([1, 4], 0.25),
            },
        }
    }

    #[test]
    fn serves_mixed_versions_in_one_batch() {
        let bank = ModelBank::new(factory(), 2).unwrap();
        let cfg = ServeConfig::default();
        let mut r = Replica::new(0, &cfg);
        r.offer(pending(0, 0, 0, 0), 0.0, f64::INFINITY);
        r.offer(pending(1, 1, 0, 1), 0.0, f64::INFINITY);
        r.offer(pending(2, 0, 1, 0), 0.0, f64::INFINITY);
        let entries = r.drain_pending();
        let (done, outcomes) = r.serve(&bank, entries, 1.0, &cfg).unwrap();
        assert!(done > 1.0);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.ok));
        // Same activations, different versions ⇒ different logits.
        let by_id = |id: u64| {
            outcomes
                .iter()
                .find(|o| o.id == id)
                .unwrap()
                .logits
                .clone()
                .unwrap()
        };
        assert_eq!(by_id(0).as_slice(), by_id(2).as_slice());
        assert_ne!(by_id(0).as_slice(), by_id(1).as_slice());
        assert_eq!(r.served, 3);
        assert_eq!(r.sessions().len(), 3);
    }

    #[test]
    fn expired_entries_are_not_inferred() {
        let bank = ModelBank::new(factory(), 1).unwrap();
        let cfg = ServeConfig::default();
        let mut r = Replica::new(1, &cfg);
        r.offer(pending(5, 0, 0, 0), 0.0, 0.5); // deadline before serve_done
        let entries = r.drain_pending();
        let (_, outcomes) = r.serve(&bank, entries, 1.0, &cfg).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].ok);
        assert_eq!(r.served, 0);
        assert!(r.sessions().is_empty());
    }

    #[test]
    fn handoff_merges_served_counts() {
        let ring = HashRing::new(2, 8);
        let cfg = ServeConfig::default();
        let mut a = Replica::new(0, &cfg);
        let key = SessionKey {
            tenant: 1,
            session: 1,
        };
        let mut s = SessionState::new(key, 0);
        s.served = 4;
        a.import_sessions(vec![s]);
        let mut again = SessionState::new(key, 0);
        again.served = 2;
        again.last_served_s = 9.0;
        a.import_sessions(vec![again]);
        assert_eq!(a.sessions()[&key].served, 6);
        assert_eq!(a.sessions()[&key].last_served_s, 9.0);
        // Export-by-home moves only the keys homed to the target.
        let home = ring.home(key.tenant, key.session).unwrap();
        let other = 1 - home;
        assert!(a.export_sessions_homed_to(&ring, other).is_empty());
        let moved = a.export_sessions_homed_to(&ring, home);
        assert_eq!(moved.len(), 1);
        assert!(a.sessions().is_empty());
    }
}
