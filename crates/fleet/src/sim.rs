//! The fleet's discrete-event serving simulation.
//!
//! One process plays every role — platforms, router, replicas — over a
//! [`ChaosTransport`]-wrapped [`MemoryTransport`] on a [`FleetTopology`],
//! replaying all traffic in simulated-time order exactly like the
//! single-server serving runtime. Each replica keeps its own busy clock,
//! so capacity genuinely scales with fleet size; every frame (routed
//! requests, responses, session handoffs) travels through the transport,
//! so wire bytes and chaos faults are accounted for real.
//!
//! Determinism: the event loop is single-threaded with a total order on
//! events `(time, insertion seq)`, request activations and version pins
//! depend only on the seed and tenant layout — never on replica count —
//! and per-row GEMM results are batch-composition-independent, so the
//! logits digest of a run is bit-identical across fleet sizes.
//!
//! The simulated clock maps onto chaos ticks via
//! `tick = floor(time / chaos_tick_s)`; the driver applies
//! [`FaultPlan`](medsplit_simnet::FaultPlan) events at tick boundaries
//! and reacts: a crashed replica loses its queue and session state, its
//! in-flight requests are re-dispatched to ring successors, and no
//! admitted request is ever silently dropped (deadline timeouts are
//! answered and counted).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;
use medsplit_core::{build_split, Platform, Result, SplitError, SplitPoint, SplitServer, WireCodec};
use medsplit_data::SyntheticTabular;
use medsplit_nn::{Architecture, MlpConfig};
use medsplit_serve::{
    decode_response, decode_routed_request, encode_response_from, encode_routed_request, ClientRecord,
    InferStatus, LatencySummary, RoutedRequest, ServeReport,
};
use medsplit_simnet::{
    ChaosEvent, ChaosSnapshot, ChaosTransport, Envelope, FaultPlan, FleetTopology, MemoryTransport,
    MessageKind, NodeId, StatsSnapshot, Topology, Transport,
};
use medsplit_tensor::{init::rng_from_seed, Tensor};

use crate::bank::ModelBank;
use crate::config::FleetConfig;
use crate::replica::{FleetPending, Replica, ReplicaPhase, Served};
use crate::ring::hash64;
use crate::router::{InFlight, Router};
use crate::session::{decode_sessions, encode_sessions, SessionKey, SessionState};

/// Feature width of the simulated workload's inputs.
pub const FEATURES: usize = 16;
/// Class count of the simulated workload's outputs.
pub const CLASSES: usize = 4;

/// An operator action on one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Graceful drain: stop accepting, flush in-flight work, hand the
    /// session shard to ring successors.
    Drain,
    /// Return a drained (or crash-recovered) replica to service and pull
    /// back the sessions homed to it.
    Rejoin,
}

/// A scheduled operator event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEvent {
    /// Simulated time the action takes effect.
    pub at_s: f64,
    /// Target replica.
    pub replica: usize,
    /// What happens.
    pub action: FleetAction,
}

/// Per-replica accounting.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Replica index.
    pub replica: usize,
    /// Requests served with logits.
    pub served: u64,
    /// Lifecycle phase at the end of the run.
    pub final_phase: ReplicaPhase,
    /// Sessions resident at the end of the run.
    pub sessions: usize,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, Default)]
pub struct TenantReport {
    /// Requests the tenant submitted.
    pub offered: usize,
    /// Requests served with logits.
    pub completed: usize,
    /// Requests refused by the router (quota / no active replica).
    pub throttled: usize,
}

/// Everything a fleet run produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Aggregate latency/throughput/byte accounting.
    pub report: ServeReport,
    /// Per-request terminal records, sorted by id. Always exactly one
    /// record per offered request — the no-drop invariant.
    pub records: Vec<ClientRecord>,
    /// Raw simulated-network statistics.
    pub stats: StatsSnapshot,
    /// Chaos-injection counters.
    pub chaos: ChaosSnapshot,
    /// Per-replica accounting, indexed by replica.
    pub per_replica: Vec<ReplicaReport>,
    /// Per-tenant accounting, indexed by tenant.
    pub per_tenant: Vec<TenantReport>,
    /// Sessions moved by drain/rejoin handoffs.
    pub handoffs: usize,
    /// Requests re-dispatched after a replica failure.
    pub redispatched: usize,
    /// FNV digest over `(id, logits)` of every completed request, in id
    /// order — bit-identical across replica counts for the same seed.
    pub logits_digest: u64,
}

enum EvKind {
    /// A routed request reaching the router.
    RouterArrival(FleetPending),
    /// A dispatched request reaching its replica.
    ReplicaArrival {
        replica: usize,
        attempt: usize,
        pending: FleetPending,
    },
    /// A scheduled operator action.
    Operator(FleetEvent),
}

struct Ev {
    t: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .t
            .partial_cmp(&self.t)
            .expect("event times are not NaN")
            .then(other.seq.cmp(&self.seq))
    }
}

type FleetNet = ChaosTransport<MemoryTransport<FleetTopology>>;

struct Driver<'a> {
    cfg: &'a FleetConfig,
    topology: FleetTopology,
    net: FleetNet,
    bank: ModelBank,
    router: Router,
    replicas: Vec<Replica>,
    heap: BinaryHeap<Ev>,
    seq: u64,
    tick: Option<u64>,
    handoffs: usize,
    redispatched: usize,
    lost: Vec<ClientRecord>,
}

/// Globally unique request id: tenant index in the high bits.
fn request_id(tenant: usize, seq: usize) -> u64 {
    ((tenant as u64) << 32) | seq as u64
}

/// Runs a sharded serving session: `cfg.tenants` platforms each submit
/// `requests_per_tenant` queries open-loop at `cfg.serve.offered_rps`,
/// the router shards them over `cfg.replicas` replicas by consistent
/// hash, and `plan`/`events` inject failures and drains along the way.
///
/// # Errors
///
/// Returns config errors for an invalid `cfg`, and model/protocol errors
/// from the serving path. A run that loses an admitted request returns a
/// protocol error — the no-drop invariant is checked, not assumed.
pub fn run_fleet(
    cfg: &FleetConfig,
    requests_per_tenant: usize,
    seed: u64,
    plan: FaultPlan,
    events: &[FleetEvent],
) -> Result<FleetOutcome> {
    cfg.validate().map_err(SplitError::Config)?;
    let tenants = cfg.tenants;

    // Workload: the same split model the single-server path serves. The
    // bank rebuilds the server suffix from (arch, seed) on demand;
    // nothing here depends on the replica count.
    let arch = Architecture::Mlp(MlpConfig::small(FEATURES, CLASSES));
    let model = build_split(&arch, SplitPoint::Default, seed, tenants)?;
    let mut platforms = Vec::with_capacity(tenants);
    for (id, client) in model.clients.into_iter().enumerate() {
        let data = SyntheticTabular::new(CLASSES, FEATURES, seed ^ id as u64).generate(16)?;
        platforms.push(Platform::new(id, client, data, 4, 0.0, seed));
    }
    let bank_arch = arch.clone();
    let bank = ModelBank::new(
        Box::new(move || {
            build_split(&bank_arch, SplitPoint::Default, seed, 1)
                .expect("bank rebuild of a previously valid architecture")
                .server
        }),
        cfg.weight_versions,
    )?;

    let topology = FleetTopology::new(tenants, cfg.replicas);
    let net = ChaosTransport::new(MemoryTransport::new(topology.clone()), plan);
    let mut driver = Driver {
        cfg,
        topology,
        net,
        bank,
        router: Router::new(
            cfg.replicas,
            cfg.vnodes,
            cfg.tenant_quota,
            cfg.weight_versions as u32,
        ),
        replicas: (0..cfg.replicas).map(|r| Replica::new(r, &cfg.serve)).collect(),
        heap: BinaryHeap::new(),
        seq: 0,
        tick: None,
        handoffs: 0,
        redispatched: 0,
        lost: Vec::new(),
    };

    for event in events {
        driver.push(event.at_s, EvKind::Operator(*event));
    }
    driver.submit_all(&mut platforms, requests_per_tenant)?;
    driver.run_events()?;
    driver.final_drain()?;
    driver.collect(requests_per_tenant)
}

impl Driver<'_> {
    fn push(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Ev { t, seq, kind });
    }

    fn codec(&self) -> WireCodec {
        self.cfg.serve.codec
    }

    fn sync_clock(&self, node: NodeId, t: f64) {
        let stats = self.net.stats();
        let now = stats.clock(node);
        if t > now {
            stats.advance_clock(node, t - now);
        }
    }

    /// Submits every tenant's stream through the transport in global
    /// submission order and schedules the router arrivals.
    fn submit_all(&mut self, platforms: &mut [Platform], per_tenant: usize) -> Result<()> {
        // Precompute activations per tenant (depends on seed only).
        let mut requests: Vec<(f64, FleetPending)> = Vec::with_capacity(platforms.len() * per_tenant);
        for (tenant, platform) in platforms.iter_mut().enumerate() {
            let mut rng = rng_from_seed(0x5eed ^ (tenant as u64).wrapping_mul(0x9e37_79b9));
            for seq in 0..per_tenant {
                let submit_s = seq as f64 / self.cfg.serve.offered_rps;
                let query = Tensor::rand_uniform([1, FEATURES], -1.0, 1.0, &mut rng);
                let acts = platform.infer_l1(&query)?;
                let req = RoutedRequest {
                    id: request_id(tenant, seq),
                    submit_s,
                    deadline_s: submit_s + self.cfg.serve.deadline_s,
                    tenant: tenant as u64,
                    session: (seq % self.cfg.sessions_per_tenant) as u64,
                    // Stamped by the router at admission.
                    version: u32::MAX,
                    activations: acts,
                };
                requests.push((
                    submit_s,
                    FleetPending {
                        platform: tenant,
                        req,
                    },
                ));
            }
        }
        requests.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("submit times are not NaN")
                .then(a.1.req.id.cmp(&b.1.req.id))
        });
        for (submit_s, pending) in requests {
            let node = NodeId::Platform(pending.platform);
            self.sync_clock(node, submit_s);
            let env = encode_routed_request(node, NodeId::Server, &pending.req, self.codec());
            self.net.send(env).map_err(SplitError::from)?;
            match self.net.try_recv(NodeId::Server) {
                Some(env) => {
                    let uplink = self.topology.link(node, NodeId::Server);
                    let arrival = submit_s + uplink.map_or(0.0, |l| l.transfer_time(env.wire_size()));
                    let req = decode_routed_request(&env)?;
                    let platform = pending.platform;
                    self.push(arrival, EvKind::RouterArrival(FleetPending { platform, req }));
                }
                None => {
                    // The uplink ate the frame (probabilistic chaos).
                    // The router never saw it, so the only honest record
                    // is a client-side loss marked as throttled-at-zero.
                    self.lost.push(ClientRecord {
                        platform: pending.platform,
                        id: pending.req.id,
                        submit_s,
                        status: InferStatus::Throttled,
                        latency_s: 0.0,
                        logits: None,
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies chaos ticks and age-rule batch flushes up to time `t`.
    fn advance(&mut self, t: f64) -> Result<()> {
        let target = (t / self.cfg.chaos_tick_s).floor() as u64;
        let mut next = self.tick.map_or(0, |c| c + 1);
        while next <= target {
            let tick_time = next as f64 * self.cfg.chaos_tick_s;
            self.flush_due(tick_time)?;
            let applied = self.net.begin_round(next);
            self.tick = Some(next);
            for event in applied {
                match event {
                    ChaosEvent::Crash {
                        node: NodeId::Replica(r),
                        ..
                    } => {
                        self.handle_crash(r, tick_time)?;
                    }
                    ChaosEvent::Recover {
                        node: NodeId::Replica(r),
                        ..
                    } => {
                        self.handle_rejoin(r, tick_time, false)?;
                    }
                    // Link flaps need no state change here: dispatch
                    // consults the transport's health oracle directly.
                    _ => {}
                }
            }
            next += 1;
        }
        self.flush_due(t)
    }

    /// Serves every batch whose age rule expired at or before `t`,
    /// earliest-ready first across replicas (ties by replica id).
    fn flush_due(&mut self, t: f64) -> Result<()> {
        loop {
            let due = self
                .replicas
                .iter()
                .filter(|r| r.phase() == ReplicaPhase::Active)
                .filter_map(|r| r.ready_at().map(|ready| (ready, r.id())))
                .filter(|&(ready, _)| ready <= t)
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("not NaN").then(a.1.cmp(&b.1)));
            let Some((ready, idx)) = due else { return Ok(()) };
            let flush_t = self.replicas[idx].clock.max(ready);
            let entries = self.replicas[idx].take_batch();
            self.serve_and_respond(idx, entries, flush_t)?;
        }
    }

    fn serve_and_respond(
        &mut self,
        idx: usize,
        entries: Vec<medsplit_serve::BatchEntry<FleetPending>>,
        flush_t: f64,
    ) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let (done, outcomes) = self.replicas[idx].serve(&self.bank, entries, flush_t, &self.cfg.serve)?;
        self.replicas[idx].clock = done;
        self.sync_clock(NodeId::Replica(idx), done);
        for served in outcomes {
            self.respond(NodeId::Replica(idx), &served, done)?;
            self.router.complete(served.id);
        }
        Ok(())
    }

    /// Sends one terminal response and lets the transport account it.
    fn respond(&mut self, src: NodeId, served: &Served, at_s: f64) -> Result<()> {
        let status = if served.ok {
            InferStatus::Ok
        } else {
            InferStatus::TimedOut
        };
        let env = encode_response_from(
            src,
            NodeId::Platform(served.platform),
            served.id,
            served.submit_s,
            at_s,
            status,
            served.logits.as_ref(),
            self.codec(),
        );
        self.net.send(env).map_err(SplitError::from)
    }

    /// Answers a request at the router itself (quota or routing failure).
    fn throttle(&mut self, pending: &FleetPending, t: f64) -> Result<()> {
        medsplit_telemetry::counter_add_labeled(
            "fleet.throttled",
            &format!("tenant-{}", pending.req.tenant),
            1,
        );
        self.sync_clock(NodeId::Server, t);
        let env = encode_response_from(
            NodeId::Server,
            NodeId::Platform(pending.platform),
            pending.req.id,
            pending.req.submit_s,
            t,
            InferStatus::Throttled,
            None,
            self.codec(),
        );
        self.net.send(env).map_err(SplitError::from)
    }

    /// Dispatches a routed request to the ring: primary owner first, then
    /// successors, consulting the transport's health oracle and bounded
    /// by `dispatch_retries`. Returns `true` if the frame left the
    /// router.
    fn dispatch(
        &mut self,
        pending: FleetPending,
        t: f64,
        attempt: usize,
        mut skip: Option<usize>,
    ) -> Result<bool> {
        let tenant = pending.req.tenant;
        let session = pending.req.session;
        let mut tried = 0usize;
        loop {
            let candidate = match skip {
                None => self.router.ring().route(tenant, session),
                Some(s) => self.router.ring().successor(tenant, session, s),
            };
            let Some(r) = candidate else {
                self.router.release(tenant);
                self.throttle(&pending, t)?;
                return Ok(false);
            };
            let replica_node = NodeId::Replica(r);
            let usable = !self.net.is_down(replica_node)
                && !self.net.link_down(NodeId::Server, replica_node)
                && self.replicas[r].phase() == ReplicaPhase::Active;
            if usable {
                self.sync_clock(NodeId::Server, t);
                let env = encode_routed_request(NodeId::Server, replica_node, &pending.req, self.codec());
                let wire = env.wire_size();
                self.net.send(env).map_err(SplitError::from)?;
                if self.net.try_recv(replica_node).is_some() {
                    let lan = self.topology.link(NodeId::Server, replica_node);
                    let arrival = t + lan.map_or(0.0, |l| l.transfer_time(wire));
                    self.router.record_dispatch(InFlight {
                        platform: pending.platform,
                        replica: r,
                        attempt,
                        req: pending.req.clone(),
                    });
                    self.push(
                        arrival,
                        EvKind::ReplicaArrival {
                            replica: r,
                            attempt,
                            pending,
                        },
                    );
                    return Ok(true);
                }
                // The oracle said up but the frame was still eaten
                // (probabilistic drop): treat like an unusable candidate.
            }
            tried += 1;
            skip = Some(r);
            if tried > self.cfg.dispatch_retries {
                self.router.release(tenant);
                self.throttle(&pending, t)?;
                return Ok(false);
            }
        }
    }

    /// Re-dispatches a request whose replica failed, bumping the attempt.
    fn redispatch(&mut self, entry: InFlight, t: f64) -> Result<()> {
        self.redispatched += 1;
        medsplit_telemetry::counter_add("fleet.redispatched", 1);
        let attempt = entry.attempt + 1;
        let pending = FleetPending {
            platform: entry.platform,
            req: entry.req,
        };
        if attempt > self.cfg.dispatch_retries {
            self.router.release(pending.req.tenant);
            self.throttle(&pending, t)?;
            return Ok(());
        }
        self.dispatch(pending, t, attempt, Some(entry.replica))?;
        Ok(())
    }

    fn handle_crash(&mut self, r: usize, t: f64) -> Result<()> {
        if self.replicas[r].phase() == ReplicaPhase::Down {
            return Ok(());
        }
        let _span = medsplit_telemetry::span("fleet.rebalance");
        medsplit_telemetry::counter_add_labeled("fleet.crashes", &format!("replica-{r}"), 1);
        self.replicas[r].set_phase(ReplicaPhase::Down);
        self.router.ring_mut().set_active(r, false);
        // Queued work and local session state die with the process.
        let _ = self.replicas[r].drain_pending();
        self.replicas[r].forget_sessions();
        // Every in-flight request assigned to the victim re-routes to a
        // ring successor. Deadlines still apply downstream.
        for entry in self.router.take_inflight_for(r) {
            self.redispatch(entry, t)?;
        }
        Ok(())
    }

    /// Returns a replica to service. `graceful` distinguishes an operator
    /// rejoin after drain (sessions were handed off and come back) from a
    /// chaos recovery (successors may have rebuilt fresh state to give
    /// back).
    fn handle_rejoin(&mut self, r: usize, t: f64, graceful: bool) -> Result<()> {
        if self.replicas[r].phase() == ReplicaPhase::Active {
            return Ok(());
        }
        let _span = medsplit_telemetry::span("fleet.rebalance");
        self.replicas[r].set_phase(ReplicaPhase::Active);
        self.router.ring_mut().set_active(r, true);
        let _ = graceful; // both paths pull the homed shard back
                          // Every other replica hands back the sessions homed to `r`.
        for other in 0..self.replicas.len() {
            if other == r || self.replicas[other].phase() == ReplicaPhase::Down {
                continue;
            }
            let ring = self.router.ring().clone();
            let moved = self.replicas[other].export_sessions_homed_to(&ring, r);
            if moved.is_empty() {
                continue;
            }
            self.transfer_sessions(other, r, moved, t)?;
        }
        Ok(())
    }

    fn handle_drain(&mut self, r: usize, t: f64) -> Result<()> {
        if self.replicas[r].phase() != ReplicaPhase::Active {
            return Ok(());
        }
        let _span = medsplit_telemetry::span("fleet.drain");
        medsplit_telemetry::counter_add_labeled("fleet.drains", &format!("replica-{r}"), 1);
        self.replicas[r].set_phase(ReplicaPhase::Draining);
        self.router.ring_mut().set_active(r, false);
        // Flush everything still queued in one sweep — the drain batch
        // may exceed max_batch, and pays compute for every entry.
        let entries = self.replicas[r].drain_pending();
        let flush_t = self.replicas[r].clock.max(t);
        self.serve_and_respond(r, entries, flush_t)?;
        // Hand the session shard to each session's ring successor.
        let sessions = self.replicas[r].export_all_sessions();
        let mut by_successor: Vec<(usize, Vec<SessionState>)> = Vec::new();
        let mut orphaned: Vec<SessionState> = Vec::new();
        for s in sessions {
            match self.router.ring().successor(s.key.tenant, s.key.session, r) {
                Some(succ) => match by_successor.iter_mut().find(|(i, _)| *i == succ) {
                    Some((_, v)) => v.push(s),
                    None => by_successor.push((succ, vec![s])),
                },
                // No active successor (single-replica fleet): the state
                // stays put rather than being dropped.
                None => orphaned.push(s),
            }
        }
        self.replicas[r].import_sessions(orphaned);
        by_successor.sort_by_key(|(i, _)| *i);
        for (succ, group) in by_successor {
            self.transfer_sessions(r, succ, group, t)?;
        }
        Ok(())
    }

    /// Ships session state `from → to` in a byte-accounted
    /// [`MessageKind::SessionHandoff`] envelope and imports it.
    fn transfer_sessions(
        &mut self,
        from: usize,
        to: usize,
        sessions: Vec<SessionState>,
        t: f64,
    ) -> Result<()> {
        let count = sessions.len();
        let blob: Bytes = encode_sessions(&sessions);
        self.sync_clock(NodeId::Replica(from), t);
        let env = Envelope::new(
            NodeId::Replica(from),
            NodeId::Replica(to),
            self.tick.unwrap_or(0),
            MessageKind::SessionHandoff,
            blob,
        );
        self.net.send(env).map_err(SplitError::from)?;
        let Some(delivered) = self.net.try_recv(NodeId::Replica(to)) else {
            // Receiver died mid-handoff; the state is lost like a crash.
            return Ok(());
        };
        let imported = decode_sessions(&delivered.payload)?;
        self.replicas[to].import_sessions(imported);
        self.handoffs += count;
        medsplit_telemetry::counter_add("fleet.handoffs", count as u64);
        Ok(())
    }

    fn run_events(&mut self) -> Result<()> {
        while let Some(ev) = self.heap.pop() {
            self.advance(ev.t)?;
            match ev.kind {
                EvKind::RouterArrival(mut pending) => {
                    if !self.router.try_admit(pending.req.tenant) {
                        self.throttle(&pending, ev.t)?;
                        continue;
                    }
                    let key = SessionKey {
                        tenant: pending.req.tenant,
                        session: pending.req.session,
                    };
                    pending.req.version = self.router.pin_version(key);
                    self.dispatch(pending, ev.t, 0, None)?;
                }
                EvKind::ReplicaArrival {
                    replica,
                    attempt,
                    pending,
                } => {
                    // A crash since dispatch re-routed this request under
                    // a higher attempt; this copy is stale.
                    let current = matches!(
                        self.router.in_flight(pending.req.id),
                        Some(e) if e.replica == replica && e.attempt == attempt
                    );
                    if !current {
                        continue;
                    }
                    if self.replicas[replica].phase() != ReplicaPhase::Active {
                        // Arrived during a drain: hand straight back.
                        if let Some(entry) = self.router.take_inflight(pending.req.id) {
                            self.redispatch(entry, ev.t)?;
                        }
                        continue;
                    }
                    self.replicas[replica].clock = self.replicas[replica].clock.max(ev.t);
                    let deadline = pending.req.deadline_s;
                    let id = pending.req.id;
                    let served = Served {
                        id,
                        tenant: pending.req.tenant,
                        platform: pending.platform,
                        submit_s: pending.req.submit_s,
                        ok: false,
                        logits: None,
                    };
                    match self.replicas[replica].offer(pending, ev.t, deadline) {
                        medsplit_serve::Admission::Admitted => {
                            if self.replicas[replica].size_due() {
                                let flush_t = self.replicas[replica].clock;
                                let entries = self.replicas[replica].take_batch();
                                self.serve_and_respond(replica, entries, flush_t)?;
                            }
                        }
                        medsplit_serve::Admission::Rejected => {
                            medsplit_telemetry::counter_add("fleet.rejections", 1);
                            self.sync_clock(NodeId::Replica(replica), ev.t);
                            let env = encode_response_from(
                                NodeId::Replica(replica),
                                NodeId::Platform(served.platform),
                                served.id,
                                served.submit_s,
                                ev.t,
                                InferStatus::Rejected,
                                None,
                                self.codec(),
                            );
                            self.net.send(env).map_err(SplitError::from)?;
                            self.router.complete(id);
                        }
                    }
                }
                EvKind::Operator(op) => match op.action {
                    FleetAction::Drain => self.handle_drain(op.replica, ev.t)?,
                    FleetAction::Rejoin => self.handle_rejoin(op.replica, ev.t, true)?,
                },
            }
        }
        Ok(())
    }

    /// Serves whatever is still queued after the last event, honouring
    /// each batcher's age timer when it is finite.
    fn final_drain(&mut self) -> Result<()> {
        for idx in 0..self.replicas.len() {
            while self.replicas[idx].queued() > 0 {
                let ready = self.replicas[idx].ready_at().expect("non-empty queue");
                let clock = self.replicas[idx].clock;
                let flush_t = if ready.is_finite() {
                    clock.max(ready)
                } else {
                    clock
                };
                let entries = self.replicas[idx].take_batch();
                self.serve_and_respond(idx, entries, flush_t)?;
            }
        }
        Ok(())
    }

    /// Drains the platform inboxes into client records and folds the
    /// outcome.
    fn collect(mut self, per_tenant: usize) -> Result<FleetOutcome> {
        let tenants = self.cfg.tenants;
        let offered = tenants * per_tenant;
        let mut records: Vec<ClientRecord> = std::mem::take(&mut self.lost);
        for p in 0..tenants {
            let node = NodeId::Platform(p);
            while let Some(env) = self.net.try_recv(node) {
                let resp = decode_response(&env)?;
                let downlink = self.topology.link(env.src, node);
                let received_s = resp.served_s + downlink.map_or(0.0, |l| l.transfer_time(env.wire_size()));
                records.push(ClientRecord {
                    platform: p,
                    id: resp.id,
                    submit_s: resp.submit_s,
                    status: resp.status,
                    latency_s: received_s - resp.submit_s,
                    logits: resp.logits,
                });
            }
        }
        records.sort_by_key(|r| r.id);
        if records.len() != offered {
            return Err(SplitError::Protocol(format!(
                "no-drop invariant violated: {offered} requests offered, {} terminal records",
                records.len()
            )));
        }

        let stats = self.net.stats().snapshot();
        let mut report = ServeReport {
            offered,
            completed: 0,
            rejected: 0,
            timed_out: 0,
            throttled: 0,
            latency: None,
            request_bytes: stats.bytes_of(MessageKind::InferRequest),
            response_bytes: stats.bytes_of(MessageKind::InferResponse),
            makespan_s: stats.makespan_s,
        };
        let mut per_tenant_reports = vec![TenantReport::default(); tenants];
        let mut latencies = Vec::new();
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for rec in &records {
            report.tally(rec.status);
            let tr = &mut per_tenant_reports[rec.platform];
            tr.offered += 1;
            match rec.status {
                InferStatus::Ok => tr.completed += 1,
                InferStatus::Throttled => tr.throttled += 1,
                _ => {}
            }
            if rec.status == InferStatus::Ok {
                latencies.push(rec.latency_s);
                let logits = rec.logits.as_ref().expect("ok records carry logits");
                let mut bytes: Vec<u8> = rec.id.to_le_bytes().to_vec();
                for &v in logits.as_slice() {
                    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                digest ^= hash64(&bytes);
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        report.latency = LatencySummary::from_samples(&latencies);

        let per_replica = self
            .replicas
            .iter()
            .map(|r| ReplicaReport {
                replica: r.id(),
                served: r.served,
                final_phase: r.phase(),
                sessions: r.sessions().len(),
            })
            .collect();

        Ok(FleetOutcome {
            report,
            records,
            stats,
            chaos: self.net.chaos_stats(),
            per_replica,
            per_tenant: per_tenant_reports,
            handoffs: self.handoffs,
            redispatched: self.redispatched,
            logits_digest: digest,
        })
    }
}

/// Keeps `SplitServer` in the public-API docs honest: the fleet serves
/// the same server actor the single-server runtime does.
const _: fn(&mut SplitServer) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg(replicas: usize) -> FleetConfig {
        FleetConfig {
            replicas,
            tenants: 2,
            sessions_per_tenant: 3,
            tenant_quota: 256,
            weight_versions: 2,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_serves_every_request() {
        let cfg = quiet_cfg(2);
        let out = run_fleet(&cfg, 20, 7, FaultPlan::new(1), &[]).unwrap();
        assert_eq!(out.report.offered, 40);
        assert_eq!(out.report.completed, 40);
        assert_eq!(out.report.throttled, 0);
        assert_eq!(out.records.len(), 40);
        let served: u64 = out.per_replica.iter().map(|r| r.served).sum();
        assert_eq!(served, 40);
        assert!(out.report.request_bytes > 0);
        assert!(out.report.response_bytes > 0);
        assert!(out.report.latency.is_some());
    }

    #[test]
    fn logits_digest_is_replica_count_invariant() {
        let d1 = run_fleet(&quiet_cfg(1), 15, 11, FaultPlan::new(1), &[])
            .unwrap()
            .logits_digest;
        let d3 = run_fleet(&quiet_cfg(3), 15, 11, FaultPlan::new(1), &[])
            .unwrap()
            .logits_digest;
        let d4 = run_fleet(&quiet_cfg(4), 15, 11, FaultPlan::new(1), &[])
            .unwrap()
            .logits_digest;
        assert_eq!(d1, d3);
        assert_eq!(d3, d4);
    }

    #[test]
    fn quota_throttles_excess_inflight() {
        let mut cfg = quiet_cfg(1);
        cfg.tenant_quota = 1;
        cfg.serve.offered_rps = 10_000.0; // everything in flight at once
        cfg.serve.max_wait_s = f64::INFINITY; // no age flush: queue builds
        let out = run_fleet(&cfg, 10, 3, FaultPlan::new(1), &[]).unwrap();
        assert!(out.report.throttled > 0, "quota must bite: {:?}", out.report);
        assert_eq!(
            out.report.completed + out.report.throttled + out.report.rejected + out.report.timed_out,
            out.report.offered
        );
        let throttled: usize = out.per_tenant.iter().map(|t| t.throttled).sum();
        assert_eq!(throttled, out.report.throttled);
    }

    #[test]
    fn drain_hands_sessions_to_successors() {
        let cfg = quiet_cfg(3);
        let events = [
            FleetEvent {
                at_s: 0.05,
                replica: 1,
                action: FleetAction::Drain,
            },
            FleetEvent {
                at_s: 0.30,
                replica: 1,
                action: FleetAction::Rejoin,
            },
        ];
        let out = run_fleet(&cfg, 40, 5, FaultPlan::new(1), &events).unwrap();
        assert_eq!(out.report.offered, 80);
        assert_eq!(out.records.len(), 80);
        // Nothing may be dropped by a *graceful* drain.
        assert_eq!(out.report.completed + out.report.timed_out, 80);
        assert!(out.handoffs > 0, "drain must hand off sessions");
        assert_eq!(out.per_replica[1].final_phase, ReplicaPhase::Active);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = FleetConfig {
            replicas: 0,
            ..FleetConfig::default()
        };
        let err = run_fleet(&cfg, 1, 0, FaultPlan::new(0), &[]).unwrap_err();
        assert!(matches!(err, SplitError::Config(_)));
    }
}
