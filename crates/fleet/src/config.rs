//! Fleet configuration and validation.

use medsplit_serve::ServeConfig;

/// Parameters of a sharded serving fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of server replicas sharing the `L2..Lk` sessions.
    pub replicas: usize,
    /// Virtual nodes per replica on the consistent-hash ring.
    pub vnodes: usize,
    /// Number of tenants (each tenant submits from its own platform).
    pub tenants: usize,
    /// Distinct sessions per tenant; requests round-robin over them.
    pub sessions_per_tenant: usize,
    /// Maximum in-flight admitted requests per tenant; beyond it the
    /// router answers [`Throttled`](medsplit_serve::InferStatus::Throttled)
    /// without dispatching.
    pub tenant_quota: usize,
    /// Number of model weight versions in the bank; each session is
    /// pinned to one at admission and stays on it for its lifetime.
    pub weight_versions: usize,
    /// Per-replica batching/timing parameters (the single-server serving
    /// knobs, applied to every replica). `offered_rps` is per tenant.
    pub serve: ServeConfig,
    /// Simulated seconds per chaos tick: the fleet driver maps the
    /// discrete-event clock onto `FaultPlan` rounds via
    /// `tick = floor(sim_time / chaos_tick_s)`.
    pub chaos_tick_s: f64,
    /// How many times the router re-dispatches a request whose replica
    /// fails mid-flight before giving up with a throttle response.
    pub dispatch_retries: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            vnodes: 32,
            tenants: 3,
            sessions_per_tenant: 4,
            tenant_quota: 64,
            weight_versions: 2,
            serve: ServeConfig::default(),
            chaos_tick_s: 0.050,
            dispatch_retries: 2,
        }
    }
}

impl FleetConfig {
    /// Checks every field, returning a message naming the first invalid
    /// one (the [`medsplit_core::SplitConfig`] convention).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas < 1 {
            return Err(
                "replicas must be at least 1: a fleet needs at least one server replica to route to".into(),
            );
        }
        if self.vnodes < 1 {
            return Err(
                "vnodes must be at least 1: a replica with no ring points can never be routed to".into(),
            );
        }
        if self.tenants < 1 {
            return Err("tenants must be at least 1: an empty fleet run has no traffic to serve".into());
        }
        if self.sessions_per_tenant < 1 {
            return Err("sessions_per_tenant must be at least 1: every request belongs to a session".into());
        }
        if self.tenant_quota < 1 {
            return Err(
                "tenant_quota must be at least 1: a zero quota throttles every request at admission".into(),
            );
        }
        if self.weight_versions < 1 {
            return Err("weight_versions must be at least 1: sessions pin to a version in the bank".into());
        }
        if self.serve.max_batch < 1 || self.serve.queue_capacity < 1 {
            return Err("serve.max_batch and serve.queue_capacity must be at least 1".into());
        }
        if self.serve.offered_rps.is_nan() || self.serve.offered_rps <= 0.0 {
            return Err("serve.offered_rps must be positive".into());
        }
        if self.serve.max_wait_s.is_nan() || self.serve.max_wait_s < 0.0 {
            return Err("serve.max_wait_s must be non-negative".into());
        }
        if self.serve.deadline_s.is_nan() || self.serve.deadline_s < 0.0 {
            return Err("serve.deadline_s must be non-negative".into());
        }
        if self.serve.batch_setup_s < 0.0 || self.serve.per_item_s < 0.0 {
            return Err("serve compute costs must be non-negative".into());
        }
        if self.chaos_tick_s.is_nan() || self.chaos_tick_s <= 0.0 {
            return Err("chaos_tick_s must be positive: it maps simulated time onto fault-plan ticks".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(FleetConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_replicas_rejected() {
        let cfg = FleetConfig {
            replicas: 0,
            ..FleetConfig::default()
        };
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("replicas"), "got: {msg}");
    }

    #[test]
    fn zero_vnodes_rejected() {
        let cfg = FleetConfig {
            vnodes: 0,
            ..FleetConfig::default()
        };
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("vnodes"), "got: {msg}");
    }

    #[test]
    fn zero_quota_rejected() {
        let cfg = FleetConfig {
            tenant_quota: 0,
            ..FleetConfig::default()
        };
        let msg = cfg.validate().unwrap_err();
        assert!(msg.contains("tenant_quota"), "got: {msg}");
    }

    #[test]
    fn zero_tenants_rejected() {
        let cfg = FleetConfig {
            tenants: 0,
            ..FleetConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("tenants"));
    }

    #[test]
    fn zero_sessions_rejected() {
        let cfg = FleetConfig {
            sessions_per_tenant: 0,
            ..FleetConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("sessions_per_tenant"));
    }

    #[test]
    fn zero_versions_rejected() {
        let cfg = FleetConfig {
            weight_versions: 0,
            ..FleetConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("weight_versions"));
    }

    #[test]
    fn bad_serve_fields_rejected() {
        let mut cfg = FleetConfig::default();
        cfg.serve.offered_rps = 0.0;
        assert!(cfg.validate().unwrap_err().contains("offered_rps"));
        let mut cfg = FleetConfig::default();
        cfg.serve.max_batch = 0;
        assert!(cfg.validate().unwrap_err().contains("max_batch"));
        let mut cfg = FleetConfig::default();
        cfg.serve.max_wait_s = -1.0;
        assert!(cfg.validate().unwrap_err().contains("max_wait_s"));
        let mut cfg = FleetConfig::default();
        cfg.serve.deadline_s = f64::NAN;
        assert!(cfg.validate().unwrap_err().contains("deadline_s"));
        let mut cfg = FleetConfig::default();
        cfg.serve.per_item_s = -0.5;
        assert!(cfg.validate().unwrap_err().contains("compute costs"));
    }

    #[test]
    fn bad_chaos_tick_rejected() {
        let cfg = FleetConfig {
            chaos_tick_s: 0.0,
            ..FleetConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("chaos_tick_s"));
        let cfg = FleetConfig {
            chaos_tick_s: f64::NAN,
            ..FleetConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("chaos_tick_s"));
    }
}
