//! The fleet router: admission quotas, version pinning, and the
//! authoritative in-flight table that makes crash redispatch possible.

use std::collections::HashMap;

use medsplit_serve::RoutedRequest;

use crate::ring::{key_hash, HashRing};
use crate::session::SessionKey;

/// One dispatched-but-unanswered request, kept at the router so a replica
/// crash can re-route it instead of losing it.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Platform that submitted the request.
    pub platform: usize,
    /// Replica the current attempt was dispatched to.
    pub replica: usize,
    /// Dispatch attempt number, starting at 0; bumped on redispatch so a
    /// stale in-transit copy of an earlier attempt can be recognised and
    /// dropped.
    pub attempt: usize,
    /// The full routed request (re-sent verbatim on redispatch).
    pub req: RoutedRequest,
}

/// The admission/routing half of the fleet, fronting every replica.
#[derive(Debug)]
pub struct Router {
    ring: HashRing,
    quota: usize,
    versions: u32,
    /// Sticky version pins, assigned deterministically on first sight.
    pins: HashMap<SessionKey, u32>,
    /// In-flight admitted requests by id.
    inflight: HashMap<u64, InFlight>,
    /// Admitted-but-unanswered count per tenant (the quota variable).
    tenant_inflight: HashMap<u64, usize>,
}

impl Router {
    /// A router over `replicas` active replicas.
    pub fn new(replicas: usize, vnodes: usize, quota: usize, versions: u32) -> Self {
        Router {
            ring: HashRing::new(replicas, vnodes),
            quota,
            versions,
            pins: HashMap::new(),
            inflight: HashMap::new(),
            tenant_inflight: HashMap::new(),
        }
    }

    /// The routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Mutable ring access (membership and activity changes).
    pub fn ring_mut(&mut self) -> &mut HashRing {
        &mut self.ring
    }

    /// The session's pinned weight version, assigning one on first sight.
    /// The pin is a deterministic function of the key and the version
    /// count alone — never of fleet size — so logits are bit-identical
    /// across replica counts.
    pub fn pin_version(&mut self, key: SessionKey) -> u32 {
        let versions = self.versions;
        *self
            .pins
            .entry(key)
            .or_insert_with(|| (key_hash(key.tenant, key.session) % u64::from(versions)) as u32)
    }

    /// Tries to admit one request for `tenant` under its quota,
    /// incrementing the in-flight count on success.
    pub fn try_admit(&mut self, tenant: u64) -> bool {
        let count = self.tenant_inflight.entry(tenant).or_insert(0);
        if *count >= self.quota {
            return false;
        }
        *count += 1;
        true
    }

    /// Current in-flight count for a tenant.
    pub fn tenant_inflight(&self, tenant: u64) -> usize {
        self.tenant_inflight.get(&tenant).copied().unwrap_or(0)
    }

    /// Records a dispatched request in the in-flight table.
    pub fn record_dispatch(&mut self, entry: InFlight) {
        self.inflight.insert(entry.req.id, entry);
    }

    /// Looks up an in-flight entry by id.
    pub fn in_flight(&self, id: u64) -> Option<&InFlight> {
        self.inflight.get(&id)
    }

    /// Marks a request terminal: removes it from the in-flight table and
    /// releases its tenant quota slot. Idempotent for unknown ids.
    pub fn complete(&mut self, id: u64) {
        if let Some(entry) = self.inflight.remove(&id) {
            if let Some(count) = self.tenant_inflight.get_mut(&entry.req.tenant) {
                *count = count.saturating_sub(1);
            }
        }
    }

    /// Releases a tenant quota slot for a request that was admitted but
    /// never dispatched (terminal answer produced at the router itself).
    pub fn release(&mut self, tenant: u64) {
        if let Some(count) = self.tenant_inflight.get_mut(&tenant) {
            *count = count.saturating_sub(1);
        }
    }

    /// Removes and returns one in-flight entry by id (redispatch of a
    /// single request that reached a draining replica). The tenant's
    /// quota slot stays held; the redispatcher settles it at the
    /// request's eventual terminal answer.
    pub fn take_inflight(&mut self, id: u64) -> Option<InFlight> {
        self.inflight.remove(&id)
    }

    /// Removes and returns every in-flight entry currently assigned to
    /// `replica` — the redispatch set after that replica crashes. Sorted
    /// by id so redispatch order is deterministic.
    pub fn take_inflight_for(&mut self, replica: usize) -> Vec<InFlight> {
        let ids: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, e)| e.replica == replica)
            .map(|(&id, _)| id)
            .collect();
        let mut out: Vec<InFlight> = ids
            .into_iter()
            .filter_map(|id| self.inflight.remove(&id))
            .collect();
        out.sort_by_key(|e| e.req.id);
        out
    }

    /// Number of requests currently in flight across all replicas.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::Tensor;

    fn req(id: u64, tenant: u64, session: u64) -> RoutedRequest {
        RoutedRequest {
            id,
            submit_s: 0.0,
            deadline_s: f64::INFINITY,
            tenant,
            session,
            version: 0,
            activations: Tensor::ones([1, 2]),
        }
    }

    #[test]
    fn quota_limits_inflight_per_tenant() {
        let mut r = Router::new(2, 8, 2, 1);
        assert!(r.try_admit(0));
        assert!(r.try_admit(0));
        assert!(!r.try_admit(0), "third admit exceeds quota 2");
        assert!(r.try_admit(1), "other tenants are unaffected");
        r.record_dispatch(InFlight {
            platform: 0,
            replica: 0,
            attempt: 0,
            req: req(7, 0, 0),
        });
        r.complete(7);
        assert_eq!(r.tenant_inflight(0), 1);
        assert!(r.try_admit(0), "completion frees a slot");
    }

    #[test]
    fn pins_are_sticky_and_deterministic() {
        let mut a = Router::new(2, 8, 4, 3);
        let mut b = Router::new(5, 8, 4, 3); // different fleet size
        let key = SessionKey {
            tenant: 3,
            session: 9,
        };
        let pin = a.pin_version(key);
        assert!(pin < 3);
        assert_eq!(a.pin_version(key), pin, "pin is sticky");
        assert_eq!(b.pin_version(key), pin, "pin ignores fleet size");
    }

    #[test]
    fn crash_takes_only_the_victims_inflight() {
        let mut r = Router::new(3, 8, 10, 1);
        for id in 0..4u64 {
            assert!(r.try_admit(0));
            r.record_dispatch(InFlight {
                platform: 0,
                replica: (id % 2) as usize,
                attempt: 0,
                req: req(id, 0, id),
            });
        }
        let taken = r.take_inflight_for(0);
        assert_eq!(taken.iter().map(|e| e.req.id).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(r.inflight_len(), 2);
        // Quota slots stay held until the redispatched attempts finish.
        assert_eq!(r.tenant_inflight(0), 4);
    }
}
