//! Session identity and the portable state blob a drain hands off.
//!
//! A *session* is one tenant's long-lived inference stream: it pins a
//! weight version at admission and accumulates a served count. When a
//! replica drains, each of its sessions is serialised with
//! [`encode_sessions`], shipped to its ring successor inside a
//! [`SessionHandoff`](medsplit_simnet::MessageKind::SessionHandoff)
//! envelope (so the rebalance traffic is byte-accounted like everything
//! else), and re-imported there — the handoff invariant is that served
//! counts and version pins survive the move bit-for-bit.

use bytes::{BufMut, Bytes};
use medsplit_core::{Result, SplitError};

/// Identity of one session: the routing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionKey {
    /// Owning tenant.
    pub tenant: u64,
    /// Session id, unique within the tenant.
    pub session: u64,
}

/// Portable per-session state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionState {
    /// The session's identity.
    pub key: SessionKey,
    /// Weight version the session is pinned to.
    pub pinned_version: u32,
    /// Requests served for this session so far.
    pub served: u64,
    /// Simulated time of the last served request (0 when never served).
    pub last_served_s: f64,
}

impl SessionState {
    /// A fresh session pinned to `version`.
    pub fn new(key: SessionKey, version: u32) -> Self {
        SessionState {
            key,
            pinned_version: version,
            served: 0,
            last_served_s: 0.0,
        }
    }
}

/// Bytes per serialised session record.
const RECORD_BYTES: usize = 8 + 8 + 4 + 8 + 8;

/// Serialises session records into a handoff payload. Records are sorted
/// by key first so the blob — and therefore the handoff wire bytes — are
/// independent of hash-map iteration order.
pub fn encode_sessions(sessions: &[SessionState]) -> Bytes {
    let mut sorted: Vec<&SessionState> = sessions.iter().collect();
    sorted.sort_by_key(|s| s.key);
    let mut buf = Vec::with_capacity(8 + sorted.len() * RECORD_BYTES);
    buf.put_u64_le(sorted.len() as u64);
    for s in sorted {
        buf.put_u64_le(s.key.tenant);
        buf.put_u64_le(s.key.session);
        buf.put_u32_le(s.pinned_version);
        buf.put_u64_le(s.served);
        buf.put_u64_le(s.last_served_s.to_bits());
    }
    Bytes::from(buf)
}

/// Parses a payload produced by [`encode_sessions`].
///
/// # Errors
///
/// Returns [`SplitError::Protocol`] for truncated or inconsistent blobs.
pub fn decode_sessions(payload: &Bytes) -> Result<Vec<SessionState>> {
    if payload.len() < 8 {
        return Err(SplitError::Protocol(format!(
            "truncated session handoff ({} bytes)",
            payload.len()
        )));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
    let count = read_u64(0) as usize;
    if payload.len() != 8 + count * RECORD_BYTES {
        return Err(SplitError::Protocol(format!(
            "session handoff length {} does not match {count} records",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let at = 8 + i * RECORD_BYTES;
        out.push(SessionState {
            key: SessionKey {
                tenant: read_u64(at),
                session: read_u64(at + 8),
            },
            pinned_version: u32::from_le_bytes(payload[at + 16..at + 20].try_into().expect("4 bytes")),
            served: read_u64(at + 20),
            last_served_s: f64::from_bits(read_u64(at + 28)),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_round_trip_sorted() {
        let b = SessionState {
            key: SessionKey {
                tenant: 2,
                session: 0,
            },
            pinned_version: 1,
            served: 9,
            last_served_s: 1.5,
        };
        let a = SessionState::new(
            SessionKey {
                tenant: 1,
                session: 3,
            },
            0,
        );
        let blob = encode_sessions(&[b, a]);
        let back = decode_sessions(&blob).unwrap();
        // Sorted by key regardless of input order.
        assert_eq!(back, vec![a, b]);
        // Sorted input produces the identical blob.
        assert_eq!(encode_sessions(&[a, b]), blob);
    }

    #[test]
    fn empty_handoff_round_trips() {
        let blob = encode_sessions(&[]);
        assert_eq!(blob.len(), 8);
        assert!(decode_sessions(&blob).unwrap().is_empty());
    }

    #[test]
    fn corrupt_handoffs_rejected() {
        assert!(decode_sessions(&Bytes::from_static(b"abc")).is_err());
        let blob = encode_sessions(&[SessionState::new(
            SessionKey {
                tenant: 0,
                session: 0,
            },
            0,
        )]);
        assert!(decode_sessions(&blob.slice(..blob.len() - 1)).is_err());
        // Count larger than the body claims.
        let mut raw = blob.to_vec();
        raw[0] = 9;
        assert!(decode_sessions(&Bytes::from(raw)).is_err());
    }
}
