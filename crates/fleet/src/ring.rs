//! Consistent-hash routing ring with virtual nodes.
//!
//! The router maps a `(tenant, session)` key to a server replica by
//! hashing the key onto a ring of replica points and walking clockwise to
//! the first *active* point. Each replica contributes `vnodes` points so
//! load spreads evenly; when a replica is drained or crashes it is marked
//! inactive rather than removed, which is exactly the "successor takes
//! over" semantics the drain protocol needs — and when it rejoins, the
//! same keys fall back to it because its points never moved.
//!
//! Hashing is FNV-1a over explicit little-endian byte strings, so routing
//! is deterministic across processes and platforms (no `RandomState`).

/// FNV-1a over a byte string. Stable across processes — the property the
/// proptest suite pins down.
pub(crate) fn hash64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hash of a routing key.
pub fn key_hash(tenant: u64, session: u64) -> u64 {
    let mut buf = [0u8; 17];
    buf[0] = b'k';
    buf[1..9].copy_from_slice(&tenant.to_le_bytes());
    buf[9..17].copy_from_slice(&session.to_le_bytes());
    hash64(&buf)
}

fn point_hash(replica: usize, vnode: usize) -> u64 {
    let mut buf = [0u8; 17];
    buf[0] = b'r';
    buf[1..9].copy_from_slice(&(replica as u64).to_le_bytes());
    buf[9..17].copy_from_slice(&(vnode as u64).to_le_bytes());
    hash64(&buf)
}

/// A consistent-hash ring over server replicas.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Ring points sorted by hash: `(point_hash, replica)`.
    points: Vec<(u64, usize)>,
    /// Replica ids currently on the ring, sorted.
    members: Vec<usize>,
    /// Inactive members are skipped during routing but keep their points.
    inactive: Vec<usize>,
}

impl HashRing {
    /// A ring holding replicas `0..replicas`, each with `vnodes` points,
    /// all active.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes == 0` (a replica with no points is unroutable).
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        assert!(vnodes >= 1, "vnodes must be at least 1");
        let mut ring = HashRing {
            vnodes,
            points: Vec::new(),
            members: Vec::new(),
            inactive: Vec::new(),
        };
        for r in 0..replicas {
            ring.add_replica(r);
        }
        ring
    }

    /// Number of virtual nodes per replica.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Replica ids on the ring, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Adds a replica's points to the ring (no-op if already a member).
    /// The new replica starts active.
    pub fn add_replica(&mut self, replica: usize) {
        if self.members.contains(&replica) {
            return;
        }
        self.members.push(replica);
        self.members.sort_unstable();
        for v in 0..self.vnodes {
            self.points.push((point_hash(replica, v), replica));
        }
        // Ties between distinct points are broken by replica id so the
        // ring order is total and process-independent.
        self.points.sort_unstable();
    }

    /// Removes a replica's points from the ring entirely (permanent
    /// decommission — for temporary outages use [`set_active`]).
    ///
    /// [`set_active`]: HashRing::set_active
    pub fn remove_replica(&mut self, replica: usize) {
        self.members.retain(|&r| r != replica);
        self.inactive.retain(|&r| r != replica);
        self.points.retain(|&(_, r)| r != replica);
    }

    /// Marks a replica active (routable) or inactive (skipped; its keys
    /// fall through to ring successors until it returns).
    pub fn set_active(&mut self, replica: usize, active: bool) {
        if active {
            self.inactive.retain(|&r| r != replica);
        } else if self.members.contains(&replica) && !self.inactive.contains(&replica) {
            self.inactive.push(replica);
        }
    }

    /// Whether a replica is a member and currently active.
    pub fn is_active(&self, replica: usize) -> bool {
        self.members.contains(&replica) && !self.inactive.contains(&replica)
    }

    /// Routes a key to its owning active replica: the first active point
    /// clockwise from the key's hash. `None` when no replica is active.
    pub fn route(&self, tenant: u64, session: u64) -> Option<usize> {
        self.walk(key_hash(tenant, session), |r| !self.inactive.contains(&r))
    }

    /// The key's owner if *every* member were active — where the key
    /// "homes", used to decide which sessions return to a rejoined
    /// replica.
    pub fn home(&self, tenant: u64, session: u64) -> Option<usize> {
        self.walk(key_hash(tenant, session), |_| true)
    }

    /// The first active replica clockwise from the key that is *not*
    /// `skip` — the drain/crash successor for a session owned by `skip`.
    pub fn successor(&self, tenant: u64, session: u64, skip: usize) -> Option<usize> {
        self.walk(key_hash(tenant, session), |r| {
            r != skip && !self.inactive.contains(&r)
        })
    }

    fn walk(&self, key: u64, accept: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(h, _)| h < key);
        let n = self.points.len();
        for i in 0..n {
            let (_, replica) = self.points[(start + i) % n];
            if accept(replica) {
                return Some(replica);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_in_range() {
        let ring = HashRing::new(4, 16);
        for t in 0..8u64 {
            for s in 0..8u64 {
                let a = ring.route(t, s).unwrap();
                let b = ring.route(t, s).unwrap();
                assert_eq!(a, b);
                assert!(a < 4);
            }
        }
    }

    #[test]
    fn inactive_replica_is_skipped_and_returns() {
        let mut ring = HashRing::new(3, 32);
        // Find a key owned by replica 1.
        let (t, s) = (0..1000u64)
            .map(|s| (7u64, s))
            .find(|&(t, s)| ring.route(t, s) == Some(1))
            .expect("some key routes to replica 1");
        ring.set_active(1, false);
        assert!(!ring.is_active(1));
        let fallback = ring.route(t, s).unwrap();
        assert_ne!(fallback, 1);
        assert_eq!(ring.successor(t, s, 1), Some(fallback));
        // Keys not owned by 1 are unaffected.
        ring.set_active(1, true);
        assert_eq!(ring.route(t, s), Some(1), "key falls back to its home");
        assert_eq!(ring.home(t, s), Some(1));
    }

    #[test]
    fn removing_a_member_keeps_other_routes() {
        let mut ring = HashRing::new(4, 32);
        let before: Vec<Option<usize>> = (0..200u64).map(|s| ring.route(3, s)).collect();
        ring.remove_replica(2);
        assert_eq!(ring.members(), &[0, 1, 3]);
        for (s, prev) in before.iter().enumerate() {
            let now = ring.route(3, s as u64);
            if *prev != Some(2) {
                assert_eq!(now, *prev, "non-victim key {s} moved on removal");
            } else {
                assert_ne!(now, Some(2));
            }
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let mut ring = HashRing::new(1, 4);
        assert!(ring.route(0, 0).is_some());
        ring.set_active(0, false);
        assert_eq!(ring.route(0, 0), None);
        ring.remove_replica(0);
        assert_eq!(ring.route(0, 0), None);
        assert_eq!(ring.home(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "vnodes")]
    fn zero_vnodes_panics() {
        let _ = HashRing::new(2, 0);
    }
}
