//! End-to-end tests of the lab public API: manifest validation, sweep
//! expansion determinism, diff/gate tolerance semantics, and the
//! materialize → bless → gate round trip with a stub runner.

use std::collections::BTreeMap;
use std::path::Path;

use medsplit_lab::{
    check_invariants, compare, execute, expand, load_baseline, load_run_metrics, run_id, save_baseline,
    BenchRunner, DiffStatus, Manifest, MetricValue, PointOutcome, RunPoint, Tolerance,
};

const GOOD: &str = r#"
schema_version = 1

[lab]
name = "integration"
description = "integration-test manifest"
ci = true

[matrix]
bench = ["split_train"]
fault = ["clean", "drop10"]
codec = ["f32", "f16"]
threads = [1, 2]

[run]
rounds = 4
samples = 64

[gate]
baseline = "baselines/integration.json"
invariant_across = ["threads"]
invariant = ["bytes"]

[gate.pct]
wall_s = 25.0
"#;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("medsplit-lab-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// --- manifest validation -------------------------------------------------

#[test]
fn manifest_rejects_malformed_inputs() {
    let cases: &[(&str, &str)] = &[
        // (mutation of GOOD or standalone text, expected error fragment)
        (
            "schema_version = 2\n[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\n",
            "schema_version",
        ),
        ("[matrix]\nbench = [\"b\"]\n", "missing required section [lab]"),
        ("[lab]\nname = \"x\"\n", "missing required section [matrix]"),
        (
            "[lab]\nname = \"x\"\n[matrix]\nmodel = [\"mlp\"]\n",
            "requires a `bench` axis",
        ),
        ("[lab]\nname = \"x\"\n[matrix]\nbench = []\n", "empty list"),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\", \"b\"]\n",
            "duplicate value",
        ),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\nbench = [\"c\"]\n",
            "duplicate key",
        ),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\ngremlin = [\"g\"]\n",
            "unknown key",
        ),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\n[gremlins]\nx = 1\n",
            "unknown section",
        ),
        (
            "[lab]\nname = \"has spaces\"\n[matrix]\nbench = [\"b\"]\n",
            "must be non-empty",
        ),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\n[run]\nrounds = 0\n",
            "at least 1",
        ),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\n[gate]\ninvariant_across = [\"vibe\"]\n",
            "unknown axis",
        ),
        (
            "[lab]\nname = \"x\"\n[matrix]\nbench = [\"b\"]\n[gate.pct]\nwall_s = -5.0\n",
            "must be positive",
        ),
    ];
    for (text, fragment) in cases {
        let err = Manifest::parse(text).expect_err(text);
        assert!(
            err.to_string().contains(fragment),
            "error {err:?} for manifest {text:?} should mention {fragment:?}"
        );
    }
}

#[test]
fn manifest_accepts_the_reference_form() {
    let m = Manifest::parse(GOOD).unwrap();
    assert_eq!(m.name, "integration");
    assert!(m.ci);
    assert_eq!(m.axes.fault, vec!["clean", "drop10"]);
    assert_eq!(m.run.rounds, 4);
    assert_eq!(m.gate.baseline.as_deref(), Some("baselines/integration.json"));
    assert_eq!(m.gate.pct, vec![("wall_s".to_string(), 25.0)]);
}

// --- expansion determinism ----------------------------------------------

#[test]
fn expansion_is_deterministic_and_complete() {
    let m = Manifest::parse(GOOD).unwrap();
    let a = expand(&m.axes);
    let b = expand(&Manifest::parse(GOOD).unwrap().axes);
    assert_eq!(a, b, "two parses of one manifest must expand identically");
    assert_eq!(a.len(), 2 * 2 * 2, "fault x codec x threads");
    // Every point is unique and the key embeds every axis.
    let keys: std::collections::BTreeSet<String> = a.iter().map(RunPoint::key).collect();
    assert_eq!(keys.len(), a.len());
    // Axis declaration order in the manifest must not matter: the same
    // values listed in reverse produce the same expansion order.
    let reversed = GOOD
        .replace("fault = [\"clean\", \"drop10\"]", "FAULT_TMP")
        .replace("codec = [\"f32\", \"f16\"]", "fault = [\"clean\", \"drop10\"]")
        .replace("FAULT_TMP", "codec = [\"f32\", \"f16\"]");
    let c = expand(&Manifest::parse(&reversed).unwrap().axes);
    assert_eq!(a, c);
}

#[test]
fn run_id_is_stable_against_formatting_but_not_content() {
    let m = Manifest::parse(GOOD).unwrap();
    let commented = format!("# a leading comment\n{GOOD}\n");
    assert_eq!(run_id(&m), run_id(&Manifest::parse(&commented).unwrap()));
    let altered = GOOD.replace("rounds = 4", "rounds = 5");
    assert_ne!(run_id(&m), run_id(&Manifest::parse(&altered).unwrap()));
}

// --- diff tolerance semantics -------------------------------------------

fn num(v: f64) -> MetricValue {
    MetricValue::Num(v)
}

#[test]
fn diff_applies_exact_and_pct_tolerances() {
    let m = Manifest::parse(GOOD).unwrap();
    let mut base = BTreeMap::new();
    base.insert("p/bytes".to_string(), num(1000.0));
    base.insert("p/wall_s".to_string(), num(2.0));
    base.insert("p/digest".to_string(), MetricValue::Str("abcd".into()));
    base.insert("p/gone".to_string(), num(1.0));

    let mut cur = BTreeMap::new();
    cur.insert("p/bytes".to_string(), num(1000.0)); // exact match → ok
    cur.insert("p/wall_s".to_string(), num(2.4)); // +20% inside ±25% band → ok
    cur.insert("p/digest".to_string(), MetricValue::Str("abce".into())); // string drift → regressed
    cur.insert("p/brand_new".to_string(), num(7.0)); // new → informational

    let report = compare(&base, &cur, &m.gate);
    let status_of = |key: &str| {
        report
            .rows
            .iter()
            .find(|r| r.key == key)
            .unwrap_or_else(|| panic!("row {key}"))
            .status
    };
    assert_eq!(status_of("p/bytes"), DiffStatus::Ok);
    assert_eq!(status_of("p/wall_s"), DiffStatus::Ok);
    assert_eq!(status_of("p/digest"), DiffStatus::Regressed);
    assert_eq!(status_of("p/gone"), DiffStatus::Missing);
    assert_eq!(status_of("p/brand_new"), DiffStatus::New);
    assert!(report.regressed(), "regressed + missing rows must fail the gate");

    // A pct-banded metric outside its band regresses.
    cur.insert("p/wall_s".to_string(), num(2.6)); // +30% outside ±25%
    cur.insert("p/digest".to_string(), MetricValue::Str("abcd".into()));
    cur.insert("p/gone".to_string(), num(1.0));
    let report = compare(&base, &cur, &m.gate);
    assert_eq!(
        report.rows.iter().find(|r| r.key == "p/wall_s").unwrap().status,
        DiffStatus::Regressed
    );

    // New-only drift does not regress.
    let report = compare(
        &base,
        &{
            let mut c = base.clone();
            c.insert("p/extra".to_string(), num(1.0));
            c
        },
        &m.gate,
    );
    assert!(!report.regressed());
    assert_eq!(report.counts(), (4, 0, 0, 1));
}

#[test]
fn pct_band_never_loosens_string_metrics() {
    let mut gate = Manifest::parse(GOOD).unwrap().gate;
    gate.pct.push(("digest".to_string(), 50.0));
    assert!(matches!(
        medsplit_lab::diff::tolerance_for(&gate, "p/digest"),
        Tolerance::Pct(_)
    ));
    let mut base = BTreeMap::new();
    base.insert("p/digest".to_string(), MetricValue::Str("aaaa".into()));
    let mut cur = BTreeMap::new();
    cur.insert("p/digest".to_string(), MetricValue::Str("aaab".into()));
    let report = compare(&base, &cur, &gate);
    assert!(
        report.regressed(),
        "strings compare exactly even under a pct band"
    );
}

// --- execute → bless → gate round trip ----------------------------------

/// Stub runner: deterministic metrics derived from the point's axes,
/// except `bytes` deliberately ignores the thread count (the invariant
/// the manifest declares). `flaky` mode breaks that invariant.
struct Stub {
    flaky: bool,
}

impl BenchRunner for Stub {
    fn run_point(
        &mut self,
        point: &RunPoint,
        _manifest: &Manifest,
        artifacts_dir: &Path,
    ) -> Result<PointOutcome, String> {
        std::fs::write(artifacts_dir.join("report.csv"), "k,v\n").map_err(|e| e.to_string())?;
        let fault_tax = if point.fault == "clean" { 0.0 } else { 100.0 };
        let codec_scale = if point.codec == "f16" { 0.5 } else { 1.0 };
        let thread_leak = if self.flaky { point.threads as f64 } else { 0.0 };
        Ok(PointOutcome {
            metrics: vec![
                (
                    "bytes".into(),
                    MetricValue::Num(1000.0 * codec_scale + fault_tax + thread_leak),
                ),
                (
                    "digest".into(),
                    MetricValue::Str(format!("d-{}-{}", point.fault, point.codec)),
                ),
            ],
            timings: vec![("wall_s".into(), 0.01)],
            trace_jsonl: None,
        })
    }
}

#[test]
fn materialize_bless_gate_round_trip() {
    let m = Manifest::parse(GOOD).unwrap();
    let lab_dir = tmpdir("roundtrip");

    let out = execute(&m, &mut Stub { flaky: false }, &lab_dir).unwrap();
    assert_eq!(out.points.len(), 8);
    assert_eq!(out.metrics.len(), 16);

    // The materialized directory reloads to the same metric map.
    let (reloaded, timings) = load_run_metrics(&out.dir).unwrap();
    assert_eq!(reloaded, out.metrics);
    assert_eq!(timings.len(), 8);

    // Invariants hold: bytes does not depend on the thread count.
    assert!(check_invariants(&out.points, &out.metrics, &m.gate).is_empty());

    // Bless, re-run, gate: clean.
    let baseline = lab_dir.join("baseline.json");
    save_baseline(&baseline, &m.name, &out.metrics).unwrap();
    let again = execute(&m, &mut Stub { flaky: false }, &lab_dir).unwrap();
    assert_eq!(again.run_id, out.run_id, "same manifest, same run id");
    assert_eq!(again.metrics_digest, out.metrics_digest, "bit-identical rerun");
    let report = compare(&load_baseline(&baseline).unwrap(), &again.metrics, &m.gate);
    assert!(!report.regressed());

    // A runner that leaks thread count into results trips BOTH gates:
    // the baseline diff and the declared thread-invariance.
    let bad = execute(&m, &mut Stub { flaky: true }, &lab_dir).unwrap();
    let report = compare(&load_baseline(&baseline).unwrap(), &bad.metrics, &m.gate);
    assert!(
        report.regressed(),
        "perturbed metrics must fail the baseline gate"
    );
    let violations = check_invariants(&bad.points, &bad.metrics, &m.gate);
    assert!(
        violations.iter().any(|v| v.contains("bytes")),
        "thread-dependent bytes must violate the invariant gate: {violations:?}"
    );

    let _ = std::fs::remove_dir_all(lab_dir);
}
