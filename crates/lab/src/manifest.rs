//! The `*.lab.toml` manifest format: a hand-rolled TOML-subset parser
//! (like every codec in this workspace — no external deps) plus the
//! validated [`Manifest`] model.
//!
//! ## Format
//!
//! ```toml
//! schema_version = 1
//!
//! [lab]
//! name = "smoke"
//! description = "CI smoke matrix"
//! ci = true                      # picked up by `lab ci`
//!
//! [matrix]                       # every axis is a list; the cartesian
//! bench = ["split_train"]        # product is the run matrix
//! model = ["mlp"]
//! topology = ["star4"]
//! fault = ["clean", "drop10"]
//! codec = ["f32", "f16"]
//! isa = ["auto"]
//! threads = [1, 2]
//! seed = [42]
//!
//! [run]
//! rounds = 3
//! samples = 160
//! capture_trace = true
//!
//! [gate]
//! baseline = "baselines/smoke.json"
//! exact = ["accuracy", "bytes"]  # leaf-name prefixes compared exactly
//! invariant_across = ["isa"]     # axes results must not depend on
//! invariant = ["kernel_digest"]  # metrics pinned across those axes
//!
//! [gate.pct]
//! wall_s = 50.0                  # percentage tolerance bands
//! ```
//!
//! The parser is strict: unknown sections or keys, duplicate keys
//! (duplicate axes), and empty axis lists are all hard errors — a
//! manifest that parses is a manifest the runner fully understands.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A scalar or list value in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlVal {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A homogeneous-ish list of scalars.
    List(Vec<TomlVal>),
}

impl TomlVal {
    fn type_name(&self) -> &'static str {
        match self {
            TomlVal::Str(_) => "string",
            TomlVal::Int(_) => "integer",
            TomlVal::Float(_) => "float",
            TomlVal::Bool(_) => "bool",
            TomlVal::List(_) => "list",
        }
    }
}

/// A manifest parse/validation error, with the offending line when known.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestError {
    /// 1-based line number, 0 when the error is structural.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ManifestError> {
    Err(ManifestError {
        line,
        message: message.into(),
    })
}

/// Raw parse result: section name → (key → value), with duplicate keys
/// and sections rejected.
type RawDoc = BTreeMap<String, BTreeMap<String, (usize, TomlVal)>>;

fn parse_scalar(line_no: usize, s: &str) -> Result<TomlVal, ManifestError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return err(line_no, format!("unterminated string {s:?}"));
        };
        if body.contains('"') {
            return err(line_no, format!("embedded quote in string {s:?}"));
        }
        return Ok(TomlVal::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(TomlVal::Bool(true)),
        "false" => return Ok(TomlVal::Bool(false)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(TomlVal::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(TomlVal::Float(f));
    }
    err(line_no, format!("cannot parse value {s:?}"))
}

fn parse_value(line_no: usize, s: &str) -> Result<TomlVal, ManifestError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return err(line_no, format!("unterminated list {s:?}"));
        };
        let body = body.trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            // Split on commas outside quotes (strings in manifests never
            // contain commas-in-quotes per the axis-value grammar, but be
            // correct anyway).
            let mut depth_quote = false;
            let mut start = 0usize;
            let bytes = body.as_bytes();
            for (i, &b) in bytes.iter().enumerate() {
                match b {
                    b'"' => depth_quote = !depth_quote,
                    b',' if !depth_quote => {
                        items.push(parse_scalar(line_no, &body[start..i])?);
                        start = i + 1;
                    }
                    _ => {}
                }
            }
            items.push(parse_scalar(line_no, &body[start..])?);
        }
        return Ok(TomlVal::List(items));
    }
    parse_scalar(line_no, s)
}

/// Parses the TOML subset into sections. The implicit top-level section
/// is named `""`.
fn parse_raw(text: &str) -> Result<RawDoc, ManifestError> {
    let mut doc: RawDoc = BTreeMap::new();
    let mut section = String::new();
    doc.entry(section.clone()).or_default();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments (quotes in this grammar never contain '#').
        let line = match raw_line.find('#') {
            Some(pos) if !raw_line[..pos].contains('"') || raw_line[..pos].matches('"').count() % 2 == 0 => {
                &raw_line[..pos]
            }
            _ => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return err(line_no, format!("malformed section header {line:?}"));
            };
            let name = name.trim();
            if name.is_empty() {
                return err(line_no, "empty section name");
            }
            if doc.contains_key(name) {
                return err(line_no, format!("duplicate section [{name}]"));
            }
            section = name.to_string();
            doc.insert(section.clone(), BTreeMap::new());
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(line_no, format!("expected `key = value`, got {line:?}"));
        };
        let key = line[..eq].trim().to_string();
        if key.is_empty() {
            return err(line_no, "empty key");
        }
        let value = parse_value(line_no, &line[eq + 1..])?;
        let table = doc.get_mut(&section).expect("section exists");
        if let Some((first_line, _)) = table.get(&key) {
            return err(
                line_no,
                format!("duplicate key `{key}` in section [{section}] (first declared on line {first_line})"),
            );
        }
        table.insert(key, (line_no, value));
    }
    Ok(doc)
}

/// The run-matrix axes, each a non-empty list of values. The expansion
/// order is canonical (the field order here), independent of declaration
/// order in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Axes {
    /// Which workload each point runs (`split_train`, `kernel_smoke`, ...).
    pub bench: Vec<String>,
    /// Model identifier (workload-specific, e.g. `mlp`, `mlp_wide`).
    pub model: Vec<String>,
    /// Topology identifier (e.g. `star4`).
    pub topology: Vec<String>,
    /// Fault-plan identifier (`clean`, `drop10`, `crash_3_6`, ...).
    pub fault: Vec<String>,
    /// Wire codec (`f32` / `f16`).
    pub codec: Vec<String>,
    /// Kernel ISA (`auto`, `scalar`, `avx2`, `neon`).
    pub isa: Vec<String>,
    /// Worker-pool sizes.
    pub threads: Vec<usize>,
    /// RNG seeds.
    pub seed: Vec<u64>,
}

impl Default for Axes {
    fn default() -> Self {
        Axes {
            bench: Vec::new(), // required — no default
            model: vec!["mlp".into()],
            topology: vec!["star4".into()],
            fault: vec!["clean".into()],
            codec: vec!["f32".into()],
            isa: vec!["auto".into()],
            threads: vec![1],
            seed: vec![42],
        }
    }
}

/// The canonical axis names, in expansion order.
pub const AXIS_NAMES: &[&str] = &[
    "bench", "model", "topology", "fault", "codec", "isa", "threads", "seed",
];

/// Scalar options shared by every point of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Training rounds (split-training workloads).
    pub rounds: usize,
    /// Dataset size (split-training workloads).
    pub samples: usize,
    /// Whether each point dumps a span trace into the run directory.
    pub capture_trace: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            rounds: 3,
            samples: 160,
            capture_trace: false,
        }
    }
}

/// The regression-gate declaration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateSpec {
    /// Path to the committed baseline JSON, relative to the CWD.
    pub baseline: Option<String>,
    /// Leaf-name prefixes whose metrics are compared exactly.
    pub exact: Vec<String>,
    /// Leaf-name → percentage tolerance band.
    pub pct: Vec<(String, f64)>,
    /// Axes the `invariant` metrics must not depend on (e.g. `["isa"]`
    /// declares a scalar-vs-auto A/B).
    pub invariant_across: Vec<String>,
    /// Metric leaf names pinned identical across `invariant_across`.
    pub invariant: Vec<String>,
}

/// A parsed, validated experiment manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest format version (this parser understands version 1).
    pub schema_version: u32,
    /// Short name; also the run-directory prefix.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Whether `lab ci` includes this manifest in the gated suite.
    pub ci: bool,
    /// The run matrix.
    pub axes: Axes,
    /// Shared run options.
    pub run: RunOpts,
    /// The regression gate.
    pub gate: GateSpec,
}

fn take_str(
    table: &mut BTreeMap<String, (usize, TomlVal)>,
    key: &str,
) -> Result<Option<String>, ManifestError> {
    match table.remove(key) {
        None => Ok(None),
        Some((_, TomlVal::Str(s))) => Ok(Some(s)),
        Some((line, v)) => err(line, format!("`{key}` must be a string, got {}", v.type_name())),
    }
}

fn take_bool(
    table: &mut BTreeMap<String, (usize, TomlVal)>,
    key: &str,
) -> Result<Option<bool>, ManifestError> {
    match table.remove(key) {
        None => Ok(None),
        Some((_, TomlVal::Bool(b))) => Ok(Some(b)),
        Some((line, v)) => err(line, format!("`{key}` must be a bool, got {}", v.type_name())),
    }
}

fn take_usize(
    table: &mut BTreeMap<String, (usize, TomlVal)>,
    key: &str,
) -> Result<Option<usize>, ManifestError> {
    match table.remove(key) {
        None => Ok(None),
        Some((_line, TomlVal::Int(i))) if i >= 0 => Ok(Some(i as usize)),
        Some((line, v)) => err(line, format!("`{key}` must be a non-negative integer, got {v:?}")),
    }
}

fn take_str_list(
    table: &mut BTreeMap<String, (usize, TomlVal)>,
    key: &str,
) -> Result<Option<Vec<String>>, ManifestError> {
    match table.remove(key) {
        None => Ok(None),
        Some((line, TomlVal::List(items))) => {
            if items.is_empty() {
                return err(
                    line,
                    format!("axis `{key}` is an empty list — the matrix would be empty"),
                );
            }
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    TomlVal::Str(s) => out.push(s),
                    other => {
                        return err(
                            line,
                            format!("axis `{key}` must list strings, got {}", other.type_name()),
                        )
                    }
                }
            }
            Ok(Some(out))
        }
        Some((line, v)) => err(
            line,
            format!("axis `{key}` must be a list, got {}", v.type_name()),
        ),
    }
}

fn take_int_list(
    table: &mut BTreeMap<String, (usize, TomlVal)>,
    key: &str,
) -> Result<Option<Vec<i64>>, ManifestError> {
    match table.remove(key) {
        None => Ok(None),
        Some((line, TomlVal::List(items))) => {
            if items.is_empty() {
                return err(
                    line,
                    format!("axis `{key}` is an empty list — the matrix would be empty"),
                );
            }
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    TomlVal::Int(i) => out.push(i),
                    other => {
                        return err(
                            line,
                            format!("axis `{key}` must list integers, got {}", other.type_name()),
                        )
                    }
                }
            }
            Ok(Some(out))
        }
        Some((line, v)) => err(
            line,
            format!("axis `{key}` must be a list, got {}", v.type_name()),
        ),
    }
}

fn reject_unknown(section: &str, table: &BTreeMap<String, (usize, TomlVal)>) -> Result<(), ManifestError> {
    if let Some((key, (line, _))) = table.iter().next() {
        let place = if section.is_empty() {
            "the top level".to_string()
        } else {
            format!("section [{section}]")
        };
        return err(*line, format!("unknown key `{key}` in {place}"));
    }
    Ok(())
}

impl Manifest {
    /// Parses and validates manifest text.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut doc = parse_raw(text)?;

        let mut top = doc.remove("").unwrap_or_default();
        let schema_version = take_usize(&mut top, "schema_version")?.unwrap_or(1) as u32;
        if schema_version != 1 {
            return err(
                0,
                format!("unsupported schema_version {schema_version} (this lab understands 1)"),
            );
        }
        reject_unknown("", &top)?;

        let mut lab = doc.remove("lab").ok_or(ManifestError {
            line: 0,
            message: "missing required section [lab]".into(),
        })?;
        let name = take_str(&mut lab, "name")?.ok_or(ManifestError {
            line: 0,
            message: "[lab] requires `name`".into(),
        })?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return err(0, format!("[lab] name {name:?} must be non-empty [A-Za-z0-9_-]"));
        }
        let description = take_str(&mut lab, "description")?.unwrap_or_default();
        let ci = take_bool(&mut lab, "ci")?.unwrap_or(false);
        reject_unknown("lab", &lab)?;

        let mut matrix = doc.remove("matrix").ok_or(ManifestError {
            line: 0,
            message: "missing required section [matrix]".into(),
        })?;
        let bench = take_str_list(&mut matrix, "bench")?.ok_or(ManifestError {
            line: 0,
            message: "[matrix] requires a `bench` axis".into(),
        })?;
        let mut axes = Axes {
            bench,
            ..Axes::default()
        };
        if let Some(v) = take_str_list(&mut matrix, "model")? {
            axes.model = v;
        }
        if let Some(v) = take_str_list(&mut matrix, "topology")? {
            axes.topology = v;
        }
        if let Some(v) = take_str_list(&mut matrix, "fault")? {
            axes.fault = v;
        }
        if let Some(v) = take_str_list(&mut matrix, "codec")? {
            axes.codec = v;
        }
        if let Some(v) = take_str_list(&mut matrix, "isa")? {
            axes.isa = v;
        }
        if let Some(v) = take_int_list(&mut matrix, "threads")? {
            axes.threads = v.into_iter().map(|i| i.max(1) as usize).collect();
        }
        if let Some(v) = take_int_list(&mut matrix, "seed")? {
            axes.seed = v.into_iter().map(|i| i as u64).collect();
        }
        reject_unknown("matrix", &matrix)?;
        for (axis, values) in [
            ("bench", &axes.bench),
            ("model", &axes.model),
            ("topology", &axes.topology),
            ("fault", &axes.fault),
            ("codec", &axes.codec),
            ("isa", &axes.isa),
        ] {
            let mut seen = values.clone();
            seen.sort();
            seen.dedup();
            if seen.len() != values.len() {
                return err(0, format!("axis `{axis}` lists a duplicate value"));
            }
        }

        let mut run = RunOpts::default();
        if let Some(mut table) = doc.remove("run") {
            if let Some(v) = take_usize(&mut table, "rounds")? {
                if v == 0 {
                    return err(0, "`rounds` must be at least 1");
                }
                run.rounds = v;
            }
            if let Some(v) = take_usize(&mut table, "samples")? {
                if v < 8 {
                    return err(0, "`samples` must be at least 8");
                }
                run.samples = v;
            }
            if let Some(v) = take_bool(&mut table, "capture_trace")? {
                run.capture_trace = v;
            }
            reject_unknown("run", &table)?;
        }

        let mut gate = GateSpec::default();
        if let Some(mut table) = doc.remove("gate") {
            gate.baseline = take_str(&mut table, "baseline")?;
            gate.exact = take_str_list(&mut table, "exact")?.unwrap_or_default();
            gate.invariant_across = take_str_list(&mut table, "invariant_across")?.unwrap_or_default();
            gate.invariant = take_str_list(&mut table, "invariant")?.unwrap_or_default();
            reject_unknown("gate", &table)?;
            for axis in &gate.invariant_across {
                if !AXIS_NAMES.contains(&axis.as_str()) {
                    return err(0, format!("`invariant_across` names unknown axis `{axis}`"));
                }
            }
        }
        if let Some(table) = doc.remove("gate.pct") {
            for (key, (line, val)) in table {
                let band = match val {
                    TomlVal::Float(f) => f,
                    TomlVal::Int(i) => i as f64,
                    other => {
                        return err(
                            line,
                            format!("[gate.pct] `{key}` must be numeric, got {}", other.type_name()),
                        )
                    }
                };
                if !band.is_finite() || band <= 0.0 {
                    return err(line, format!("[gate.pct] `{key}` band must be positive"));
                }
                gate.pct.push((key, band));
            }
        }

        if let Some((section, table)) = doc.into_iter().next() {
            let line = table.values().map(|(l, _)| *l).min().unwrap_or(0);
            return err(line, format!("unknown section [{section}]"));
        }

        Ok(Manifest {
            schema_version,
            name,
            description,
            ci,
            axes,
            run,
            gate,
        })
    }

    /// Loads and parses a manifest file.
    pub fn load(path: &Path) -> Result<Manifest, ManifestError> {
        let text = std::fs::read_to_string(path).map_err(|e| ManifestError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Manifest::parse(&text).map_err(|mut e| {
            e.message = format!("{}: {}", path.display(), e.message);
            e
        })
    }
}
