//! Deterministic expansion of a manifest's axes into run points.

use crate::manifest::Axes;

/// One fully resolved cell of the run matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPoint {
    /// Workload identifier.
    pub bench: String,
    /// Model identifier.
    pub model: String,
    /// Topology identifier.
    pub topology: String,
    /// Fault-plan identifier.
    pub fault: String,
    /// Wire codec.
    pub codec: String,
    /// Kernel ISA.
    pub isa: String,
    /// Worker-pool size.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RunPoint {
    /// The point's stable key: every axis value in canonical order,
    /// `/`-separated. Used as the metric-name prefix, the artifact
    /// subdirectory name, and the baseline key.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}/t{}/s{}",
            self.bench, self.model, self.topology, self.fault, self.codec, self.isa, self.threads, self.seed
        )
    }

    /// The key with the named axes masked to `*` — the grouping key for
    /// `invariant_across` gates.
    pub fn masked_key(&self, masked_axes: &[String]) -> String {
        let mask = |axis: &str, value: String| {
            if masked_axes.iter().any(|a| a == axis) {
                "*".to_string()
            } else {
                value
            }
        };
        format!(
            "{}/{}/{}/{}/{}/{}/{}/{}",
            mask("bench", self.bench.clone()),
            mask("model", self.model.clone()),
            mask("topology", self.topology.clone()),
            mask("fault", self.fault.clone()),
            mask("codec", self.codec.clone()),
            mask("isa", self.isa.clone()),
            mask("threads", format!("t{}", self.threads)),
            mask("seed", format!("s{}", self.seed)),
        )
    }

    /// A filesystem-safe version of [`RunPoint::key`].
    pub fn dir_name(&self) -> String {
        self.key().replace('/', "_")
    }
}

/// Expands the axes into the full cartesian product, in canonical axis
/// order (bench outermost, seed innermost). The expansion depends only
/// on the axis values, never on declaration order, hash state, or time —
/// two parses of the same manifest expand identically.
pub fn expand(axes: &Axes) -> Vec<RunPoint> {
    let mut points = Vec::with_capacity(
        axes.bench.len()
            * axes.model.len()
            * axes.topology.len()
            * axes.fault.len()
            * axes.codec.len()
            * axes.isa.len()
            * axes.threads.len()
            * axes.seed.len(),
    );
    for bench in &axes.bench {
        for model in &axes.model {
            for topology in &axes.topology {
                for fault in &axes.fault {
                    for codec in &axes.codec {
                        for isa in &axes.isa {
                            for &threads in &axes.threads {
                                for &seed in &axes.seed {
                                    points.push(RunPoint {
                                        bench: bench.clone(),
                                        model: model.clone(),
                                        topology: topology.clone(),
                                        fault: fault.clone(),
                                        codec: codec.clone(),
                                        isa: isa.clone(),
                                        threads,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_cartesian_and_ordered() {
        let axes = Axes {
            bench: vec!["a".into(), "b".into()],
            codec: vec!["f32".into(), "f16".into()],
            threads: vec![1, 2],
            ..Axes::default()
        };
        let points = expand(&axes);
        assert_eq!(points.len(), 8);
        // bench is the outermost axis, threads inner than codec.
        assert_eq!(points[0].key(), "a/mlp/star4/clean/f32/auto/t1/s42");
        assert_eq!(points[1].key(), "a/mlp/star4/clean/f32/auto/t2/s42");
        assert_eq!(points[2].key(), "a/mlp/star4/clean/f16/auto/t1/s42");
        assert_eq!(points[4].key(), "b/mlp/star4/clean/f32/auto/t1/s42");
    }

    #[test]
    fn masked_key_groups_ab_pairs() {
        let axes = Axes {
            bench: vec!["kernel_smoke".into()],
            isa: vec!["scalar".into(), "auto".into()],
            ..Axes::default()
        };
        let points = expand(&axes);
        assert_eq!(points.len(), 2);
        let mask = vec!["isa".to_string()];
        assert_eq!(points[0].masked_key(&mask), points[1].masked_key(&mask));
        assert_ne!(points[0].key(), points[1].key());
    }
}
