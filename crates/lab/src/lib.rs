//! medsplit-lab: manifest-driven experiment orchestration.
//!
//! The lab turns the workspace's ad-hoc bench invocations into declared,
//! reproducible experiments:
//!
//! - [`manifest`] parses `experiments/*.lab.toml` — a strict, zero-dep
//!   TOML subset declaring a run matrix (bench × model × topology ×
//!   fault × codec × ISA × threads × seed), shared run options, and a
//!   regression gate.
//! - [`matrix`] expands the axes into [`matrix::RunPoint`]s in canonical
//!   order, deterministically.
//! - [`runner`] executes every point through a [`runner::BenchRunner`]
//!   (implemented by `medsplit-bench`, which owns the workloads) and
//!   materializes a self-describing, content-addressed run directory:
//!   `manifest.json` (resolved config + host fingerprint), `metrics.json`
//!   (deterministic metrics only, digested), `timings.json` (wall clocks
//!   and racy gauges, excluded from the digest), plus per-point traces
//!   and artifacts. Identical manifests produce identical run ids and
//!   identical `metrics.json` bytes.
//! - [`diff`] compares runs against committed `baselines/*.json` with
//!   per-metric tolerances (exact for digests/bytes/accuracy, percentage
//!   bands where declared) and checks invariant gates (metrics pinned
//!   identical across masked axes — the declarative form of the
//!   scalar-vs-auto ISA A/B).
//!
//! The split keeps this crate workload-agnostic: it depends only on
//! `medsplit-tensor` (for the ISA fingerprint) and `medsplit-telemetry`,
//! so its tests can drive the whole pipeline with stub runners.

#![warn(missing_docs)]

pub mod diff;
pub mod host;
pub mod json;
pub mod manifest;
pub mod matrix;
pub mod runner;

pub use diff::{check_invariants, compare, load_baseline, save_baseline, DiffReport, DiffStatus, Tolerance};
pub use host::{fingerprint, utc_now, HostFingerprint};
pub use manifest::{Axes, GateSpec, Manifest, ManifestError, RunOpts};
pub use matrix::{expand, RunPoint};
pub use runner::{
    execute, fnv1a, load_run_metrics, run_dir, run_id, BenchRunner, MetricValue, PointOutcome, RunOutcome,
};
