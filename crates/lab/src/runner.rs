//! Matrix execution and run-directory materialization.
//!
//! A run directory is self-describing and content-addressed:
//!
//! ```text
//! <lab_dir>/<name>-<run_id>/
//!   manifest.json   resolved manifest + host fingerprint + point list
//!   metrics.json    every deterministic metric, sorted (digested)
//!   digest.txt      FNV-1a of metrics.json — the bit-identity witness
//!   timings.json    wall-clock seconds + racy gauges + UTC timestamp
//!                   (everything nondeterministic, excluded from digest)
//!   traces/<point>.jsonl    span captures when `capture_trace = true`
//!   artifacts/<point>/      the workload's own CSVs / reports
//! ```
//!
//! The run id is an FNV-1a digest of the *resolved manifest content*
//! (axes, run options, gate, schema version) — not of the host or the
//! time — so identical manifests land in identical directories, and two
//! invocations of `lab run` on the same manifest must reproduce the same
//! `metrics.json` byte-for-byte (CI asserts exactly this).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::host::{fingerprint, utc_now};
use crate::json::{self, Json};
use crate::manifest::Manifest;
use crate::matrix::{expand, RunPoint};

/// Flattened `point_key/metric` → deterministic value map.
pub type MetricMap = BTreeMap<String, MetricValue>;
/// Flattened `point_key/observation` → seconds (or other racy scalar).
pub type TimingMap = BTreeMap<String, f64>;

/// FNV-1a over a byte stream (the workspace's standard digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deterministic metric value: a number or an opaque string (digests
/// are reported as hex strings so they are compared bit-exactly, never
/// through float formatting).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Numeric metric.
    Num(f64),
    /// Opaque exact-match metric (digests, versions).
    Str(String),
}

impl MetricValue {
    /// Renders the value for tables and JSON.
    pub fn render(&self) -> String {
        match self {
            MetricValue::Num(v) => json::fmt_num(*v),
            MetricValue::Str(s) => s.clone(),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            MetricValue::Num(v) => Json::Num(*v),
            MetricValue::Str(s) => Json::Str(s.clone()),
        }
    }

    /// Parses back from a JSON value (numbers and strings only).
    pub fn from_json(v: &Json) -> Option<MetricValue> {
        match v {
            Json::Num(n) => Some(MetricValue::Num(*n)),
            Json::Str(s) => Some(MetricValue::Str(s.clone())),
            _ => None,
        }
    }
}

/// What one executed point reports back to the lab.
#[derive(Debug, Clone, Default)]
pub struct PointOutcome {
    /// Deterministic metrics (digested; gate-able exactly).
    pub metrics: Vec<(String, MetricValue)>,
    /// Nondeterministic observations (wall times, racy gauges) — recorded
    /// in `timings.json`, excluded from the determinism digest, gate-able
    /// only with percentage bands.
    pub timings: Vec<(String, f64)>,
    /// A JSONL span trace to materialize under `traces/`, if captured.
    pub trace_jsonl: Option<String>,
}

/// Executes matrix points. Implemented by `medsplit-bench` (which knows
/// the workloads); the lab crate itself stays workload-agnostic so its
/// tests can drive the materialization pipeline with stubs.
pub trait BenchRunner {
    /// Runs one point, writing any bench-native artifacts under
    /// `artifacts_dir`, and returns its metrics.
    fn run_point(
        &mut self,
        point: &RunPoint,
        manifest: &Manifest,
        artifacts_dir: &Path,
    ) -> Result<PointOutcome, String>;
}

/// A completed manifest run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Content-addressed run id (16 hex chars).
    pub run_id: String,
    /// The materialized run directory.
    pub dir: PathBuf,
    /// Flattened `point_key/metric` → value map (the digested metrics).
    pub metrics: BTreeMap<String, MetricValue>,
    /// Flattened nondeterministic observations.
    pub timings: BTreeMap<String, f64>,
    /// FNV-1a digest of `metrics.json` (hex).
    pub metrics_digest: String,
    /// The expanded points, in execution order.
    pub points: Vec<RunPoint>,
}

fn axes_json(m: &Manifest) -> Json {
    let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
    let mut axes = BTreeMap::new();
    axes.insert("bench".into(), strs(&m.axes.bench));
    axes.insert("model".into(), strs(&m.axes.model));
    axes.insert("topology".into(), strs(&m.axes.topology));
    axes.insert("fault".into(), strs(&m.axes.fault));
    axes.insert("codec".into(), strs(&m.axes.codec));
    axes.insert("isa".into(), strs(&m.axes.isa));
    axes.insert(
        "threads".into(),
        Json::Arr(m.axes.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
    );
    axes.insert(
        "seed".into(),
        Json::Arr(m.axes.seed.iter().map(|&s| Json::Num(s as f64)).collect()),
    );
    Json::Obj(axes)
}

fn gate_json(m: &Manifest) -> Json {
    let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
    let mut gate = BTreeMap::new();
    if let Some(b) = &m.gate.baseline {
        gate.insert("baseline".into(), Json::Str(b.clone()));
    }
    gate.insert("exact".into(), strs(&m.gate.exact));
    gate.insert("invariant".into(), strs(&m.gate.invariant));
    gate.insert("invariant_across".into(), strs(&m.gate.invariant_across));
    let mut pct = BTreeMap::new();
    for (k, v) in &m.gate.pct {
        pct.insert(k.clone(), Json::Num(*v));
    }
    gate.insert("pct".into(), Json::Obj(pct));
    Json::Obj(gate)
}

/// The resolved-manifest document, *without* host or time — the content
/// the run id addresses.
fn resolved_manifest_json(m: &Manifest, points: &[RunPoint]) -> Json {
    let mut run = BTreeMap::new();
    run.insert("rounds".into(), Json::Num(m.run.rounds as f64));
    run.insert("samples".into(), Json::Num(m.run.samples as f64));
    run.insert("capture_trace".into(), Json::Bool(m.run.capture_trace));
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::Num(m.schema_version as f64));
    doc.insert("name".into(), Json::Str(m.name.clone()));
    doc.insert("description".into(), Json::Str(m.description.clone()));
    doc.insert("axes".into(), axes_json(m));
    doc.insert("run".into(), Json::Obj(run));
    doc.insert("gate".into(), gate_json(m));
    doc.insert(
        "points".into(),
        Json::Arr(points.iter().map(|p| Json::Str(p.key())).collect()),
    );
    Json::Obj(doc)
}

/// Computes the content-addressed run id for a manifest.
pub fn run_id(m: &Manifest) -> String {
    let points = expand(&m.axes);
    let canonical = json::to_string(&resolved_manifest_json(m, &points));
    format!("{:016x}", fnv1a(canonical.as_bytes()))
}

/// The run directory a manifest materializes into, under `lab_dir`.
pub fn run_dir(lab_dir: &Path, m: &Manifest) -> PathBuf {
    lab_dir.join(format!("{}-{}", m.name, run_id(m)))
}

fn metrics_json_text(run_id: &str, metrics: &BTreeMap<String, MetricValue>) -> String {
    let mut map = BTreeMap::new();
    for (k, v) in metrics {
        map.insert(k.clone(), v.to_json());
    }
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::Num(1.0));
    doc.insert("run_id".into(), Json::Str(run_id.to_string()));
    doc.insert("metrics".into(), Json::Obj(map));
    json::to_string(&Json::Obj(doc))
}

/// Expands, executes, and materializes a manifest run. Point failures
/// abort the run (a gate must never pass on partial results).
pub fn execute(
    manifest: &Manifest,
    runner: &mut dyn BenchRunner,
    lab_dir: &Path,
) -> Result<RunOutcome, String> {
    let points = expand(&manifest.axes);
    if points.is_empty() {
        return Err("manifest expands to an empty matrix".into());
    }
    let id = run_id(manifest);
    let dir = run_dir(lab_dir, manifest);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let mut metrics: BTreeMap<String, MetricValue> = BTreeMap::new();
    let mut timings: BTreeMap<String, f64> = BTreeMap::new();
    for point in &points {
        let key = point.key();
        let artifacts = dir.join("artifacts").join(point.dir_name());
        std::fs::create_dir_all(&artifacts).map_err(|e| format!("create {}: {e}", artifacts.display()))?;
        let outcome = runner
            .run_point(point, manifest, &artifacts)
            .map_err(|e| format!("point {key} failed: {e}"))?;
        for (name, value) in outcome.metrics {
            let full = format!("{key}/{name}");
            if metrics.insert(full.clone(), value).is_some() {
                return Err(format!("point {key} reported metric {full} twice"));
            }
        }
        for (name, value) in outcome.timings {
            timings.insert(format!("{key}/{name}"), value);
        }
        if let Some(jsonl) = outcome.trace_jsonl {
            let traces = dir.join("traces");
            std::fs::create_dir_all(&traces).map_err(|e| format!("create {}: {e}", traces.display()))?;
            let path = traces.join(format!("{}.jsonl", point.dir_name()));
            std::fs::write(&path, jsonl).map_err(|e| format!("write {}: {e}", path.display()))?;
        }
    }

    // manifest.json: the resolved content plus the host fingerprint.
    let mut doc = match resolved_manifest_json(manifest, &points) {
        Json::Obj(m) => m,
        _ => unreachable!(),
    };
    doc.insert("run_id".into(), Json::Str(id.clone()));
    doc.insert("host".into(), fingerprint().to_json());
    let manifest_path = dir.join("manifest.json");
    std::fs::write(&manifest_path, json::to_string(&Json::Obj(doc)))
        .map_err(|e| format!("write {}: {e}", manifest_path.display()))?;

    // metrics.json + its digest: the determinism witness.
    let metrics_text = metrics_json_text(&id, &metrics);
    let digest = format!("{:016x}", fnv1a(metrics_text.as_bytes()));
    std::fs::write(dir.join("metrics.json"), &metrics_text)
        .map_err(|e| format!("write metrics.json: {e}"))?;
    std::fs::write(dir.join("digest.txt"), format!("{digest}\n"))
        .map_err(|e| format!("write digest.txt: {e}"))?;

    // timings.json: everything nondeterministic, plus the only timestamp
    // in the run directory.
    let mut tmap = BTreeMap::new();
    for (k, v) in &timings {
        tmap.insert(k.clone(), Json::Num(*v));
    }
    let mut tdoc = BTreeMap::new();
    tdoc.insert("schema_version".into(), Json::Num(1.0));
    tdoc.insert("run_id".into(), Json::Str(id.clone()));
    tdoc.insert("generated_utc".into(), Json::Str(utc_now()));
    tdoc.insert("timings".into(), Json::Obj(tmap));
    std::fs::write(dir.join("timings.json"), json::to_string(&Json::Obj(tdoc)))
        .map_err(|e| format!("write timings.json: {e}"))?;

    Ok(RunOutcome {
        run_id: id,
        dir,
        metrics,
        timings,
        metrics_digest: digest,
        points,
    })
}

/// Loads the flattened metric map (and timings) back from a materialized
/// run directory.
pub fn load_run_metrics(dir: &Path) -> Result<(MetricMap, TimingMap), String> {
    let metrics_path = dir.join("metrics.json");
    let text = std::fs::read_to_string(&metrics_path)
        .map_err(|e| format!("cannot read {}: {e}", metrics_path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", metrics_path.display()))?;
    let mut metrics = BTreeMap::new();
    if let Some(map) = doc.get("metrics").and_then(Json::as_obj) {
        for (k, v) in map {
            if let Some(mv) = MetricValue::from_json(v) {
                metrics.insert(k.clone(), mv);
            }
        }
    }
    let mut timings = BTreeMap::new();
    let timings_path = dir.join("timings.json");
    if let Ok(text) = std::fs::read_to_string(&timings_path) {
        let doc = json::parse(&text).map_err(|e| format!("{}: {e}", timings_path.display()))?;
        if let Some(map) = doc.get("timings").and_then(Json::as_obj) {
            for (k, v) in map {
                if let Some(n) = v.as_f64() {
                    timings.insert(k.clone(), n);
                }
            }
        }
    }
    Ok((metrics, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    const MANIFEST: &str = r#"
schema_version = 1
[lab]
name = "stub"
[matrix]
bench = ["stub"]
codec = ["f32", "f16"]
"#;

    struct StubRunner;
    impl BenchRunner for StubRunner {
        fn run_point(
            &mut self,
            point: &RunPoint,
            _manifest: &Manifest,
            artifacts_dir: &Path,
        ) -> Result<PointOutcome, String> {
            std::fs::write(artifacts_dir.join("out.csv"), "a,b\n1,2\n").unwrap();
            Ok(PointOutcome {
                metrics: vec![
                    ("bytes".into(), MetricValue::Num(1000.0)),
                    ("digest".into(), MetricValue::Str(format!("h-{}", point.codec))),
                ],
                timings: vec![("wall_s".into(), 0.25)],
                trace_jsonl: None,
            })
        }
    }

    #[test]
    fn execute_materializes_and_reloads() {
        let m = Manifest::parse(MANIFEST).unwrap();
        let tmp = std::env::temp_dir().join(format!("medsplit-lab-test-{}", std::process::id()));
        let out = execute(&m, &mut StubRunner, &tmp).unwrap();
        assert_eq!(out.points.len(), 2);
        assert_eq!(out.run_id.len(), 16);
        assert!(out.dir.join("manifest.json").exists());
        assert!(out.dir.join("digest.txt").exists());
        assert!(out
            .dir
            .join("artifacts/stub_mlp_star4_clean_f32_auto_t1_s42/out.csv")
            .exists());

        let (metrics, timings) = load_run_metrics(&out.dir).unwrap();
        assert_eq!(metrics, out.metrics);
        assert_eq!(
            metrics.get("stub/mlp/star4/clean/f16/auto/t1/s42/digest"),
            Some(&MetricValue::Str("h-f16".into()))
        );
        assert_eq!(timings.len(), 2);

        // A second execution is bit-identical: same id, same digest.
        let again = execute(&m, &mut StubRunner, &tmp).unwrap();
        assert_eq!(again.run_id, out.run_id);
        assert_eq!(again.metrics_digest, out.metrics_digest);
        let _ = std::fs::remove_dir_all(tmp);
    }

    #[test]
    fn run_id_tracks_content_not_formatting() {
        let a = Manifest::parse(MANIFEST).unwrap();
        // Same content, different whitespace/comment layout → same id.
        let b = Manifest::parse(
            "schema_version = 1\n[lab]\nname = \"stub\"   # comment\n\n[matrix]\nbench = [\"stub\"]\ncodec = [\"f32\", \"f16\"]\n",
        )
        .unwrap();
        assert_eq!(run_id(&a), run_id(&b));
        // Different content → different id.
        let c = Manifest::parse(&MANIFEST.replace("\"f16\"", "\"f16x\"")).unwrap();
        assert_ne!(run_id(&a), run_id(&c));
    }
}
