//! Baseline comparison and regression gating.
//!
//! A baseline is a committed JSON snapshot of a run's flattened metric
//! map. `lab diff` renders the per-metric comparison; `lab gate` turns
//! it into an exit code. Tolerances come from the manifest's `[gate]`
//! section: metrics matched by a `[gate.pct]` entry get a percentage
//! band, everything else is compared exactly (the metrics map only holds
//! deterministic values, so exact is the safe default).

use std::collections::BTreeMap;
use std::path::Path;

use crate::json::{self, Json};
use crate::manifest::GateSpec;
use crate::matrix::RunPoint;
use crate::runner::MetricValue;

/// How a metric is compared against its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bit-exact (digests, byte counts, accuracies — anything
    /// deterministic).
    Exact,
    /// Within the given percentage of the baseline (wall-clock style
    /// observations).
    Pct(f64),
}

impl Tolerance {
    fn render(&self) -> String {
        match self {
            Tolerance::Exact => "exact".to_string(),
            Tolerance::Pct(band) => format!("±{band}%"),
        }
    }
}

/// The leaf metric name — the part after the point key.
fn leaf(key: &str) -> &str {
    key.rsplit('/').next().unwrap_or(key)
}

/// Resolves the tolerance for a metric key from the gate declaration.
/// `[gate.pct]` entries match the leaf name by prefix and win over the
/// exact default.
pub fn tolerance_for(gate: &GateSpec, key: &str) -> Tolerance {
    let name = leaf(key);
    for (prefix, band) in &gate.pct {
        if name.starts_with(prefix.as_str()) {
            return Tolerance::Pct(*band);
        }
    }
    Tolerance::Exact
}

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance.
    Ok,
    /// Outside tolerance — gates fail.
    Regressed,
    /// Present in the baseline, absent from the run — gates fail (a
    /// silently vanished metric is a regression, not progress).
    Missing,
    /// Present in the run, absent from the baseline — informational;
    /// bless the baseline to adopt it.
    New,
}

/// One row of a diff.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Full metric key (`point_key/leaf`).
    pub key: String,
    /// Baseline value, if any.
    pub baseline: Option<MetricValue>,
    /// Current value, if any.
    pub current: Option<MetricValue>,
    /// Tolerance applied.
    pub tolerance: Tolerance,
    /// Comparison outcome.
    pub status: DiffStatus,
}

/// A full baseline-vs-run comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All rows, sorted by metric key.
    pub rows: Vec<DiffRow>,
    /// Invariant-gate violations (empty when none).
    pub invariant_violations: Vec<String>,
}

impl DiffReport {
    /// True when any metric regressed or vanished, or an invariant broke.
    pub fn regressed(&self) -> bool {
        !self.invariant_violations.is_empty()
            || self
                .rows
                .iter()
                .any(|r| matches!(r.status, DiffStatus::Regressed | DiffStatus::Missing))
    }

    /// Rows that are not simply `Ok`.
    pub fn notable_rows(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.status != DiffStatus::Ok)
    }

    /// Counts by status: (ok, regressed, missing, new).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for r in &self.rows {
            match r.status {
                DiffStatus::Ok => c.0 += 1,
                DiffStatus::Regressed => c.1 += 1,
                DiffStatus::Missing => c.2 += 1,
                DiffStatus::New => c.3 += 1,
            }
        }
        c
    }

    /// Renders the human-readable table. With `verbose` every row is
    /// shown; otherwise only notable rows plus a summary line.
    pub fn render(&self, verbose: bool) -> String {
        let mut rows: Vec<[String; 5]> = Vec::new();
        rows.push([
            "metric".into(),
            "baseline".into(),
            "current".into(),
            "tol".into(),
            "status".into(),
        ]);
        let fmt_val = |v: &Option<MetricValue>| match v {
            Some(v) => v.render(),
            None => "-".to_string(),
        };
        for r in &self.rows {
            if !verbose && r.status == DiffStatus::Ok {
                continue;
            }
            rows.push([
                r.key.clone(),
                fmt_val(&r.baseline),
                fmt_val(&r.current),
                r.tolerance.render(),
                match r.status {
                    DiffStatus::Ok => "ok".into(),
                    DiffStatus::Regressed => "REGRESSED".into(),
                    DiffStatus::Missing => "MISSING".into(),
                    DiffStatus::New => "new".into(),
                },
            ]);
        }
        let mut widths = [0usize; 5];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            if i == 1 {
                for (j, w) in widths.iter().enumerate() {
                    if j > 0 {
                        out.push_str("  ");
                    }
                    out.push_str(&"-".repeat(*w));
                }
                out.push('\n');
            }
            for (j, (cell, w)) in row.iter().zip(widths.iter()).enumerate() {
                if j > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                if j + 1 < row.len() {
                    out.push_str(&" ".repeat(w - cell.len()));
                }
            }
            out.push('\n');
        }
        for v in &self.invariant_violations {
            out.push_str("INVARIANT BROKEN: ");
            out.push_str(v);
            out.push('\n');
        }
        let (ok, regressed, missing, new) = self.counts();
        out.push_str(&format!(
            "{ok} ok, {regressed} regressed, {missing} missing, {new} new, {} invariant violation(s)\n",
            self.invariant_violations.len()
        ));
        out
    }
}

fn within(tolerance: Tolerance, base: &MetricValue, cur: &MetricValue) -> bool {
    match (tolerance, base, cur) {
        (Tolerance::Pct(band), MetricValue::Num(b), MetricValue::Num(c)) => {
            let scale = b.abs().max(1e-12);
            ((c - b).abs() / scale) * 100.0 <= band
        }
        // Strings (digests) are always exact, whatever the band says.
        _ => base == cur,
    }
}

/// Compares a run's metric map against a baseline under the gate's
/// tolerances.
pub fn compare(
    baseline: &BTreeMap<String, MetricValue>,
    current: &BTreeMap<String, MetricValue>,
    gate: &GateSpec,
) -> DiffReport {
    let mut rows = Vec::new();
    for (key, base) in baseline {
        let tolerance = tolerance_for(gate, key);
        let (current_value, status) = match current.get(key) {
            None => (None, DiffStatus::Missing),
            Some(cur) => (
                Some(cur.clone()),
                if within(tolerance, base, cur) {
                    DiffStatus::Ok
                } else {
                    DiffStatus::Regressed
                },
            ),
        };
        rows.push(DiffRow {
            key: key.clone(),
            baseline: Some(base.clone()),
            current: current_value,
            tolerance,
            status,
        });
    }
    for (key, cur) in current {
        if !baseline.contains_key(key) {
            rows.push(DiffRow {
                key: key.clone(),
                baseline: None,
                current: Some(cur.clone()),
                tolerance: tolerance_for(gate, key),
                status: DiffStatus::New,
            });
        }
    }
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    DiffReport {
        rows,
        invariant_violations: Vec::new(),
    }
}

/// Checks the manifest's invariant gate: for every group of points that
/// differ only in the `invariant_across` axes, each `invariant` metric
/// must be present and identical across the whole group. This is how the
/// scalar-vs-auto ISA A/B is declared.
pub fn check_invariants(
    points: &[RunPoint],
    metrics: &BTreeMap<String, MetricValue>,
    gate: &GateSpec,
) -> Vec<String> {
    if gate.invariant_across.is_empty() || gate.invariant.is_empty() {
        return Vec::new();
    }
    let mut groups: BTreeMap<String, Vec<&RunPoint>> = BTreeMap::new();
    for p in points {
        groups
            .entry(p.masked_key(&gate.invariant_across))
            .or_default()
            .push(p);
    }
    let mut violations = Vec::new();
    for (group_key, members) in &groups {
        if members.len() < 2 {
            continue;
        }
        for name in &gate.invariant {
            let mut witness: Option<(&RunPoint, &MetricValue)> = None;
            for p in members {
                let key = format!("{}/{name}", p.key());
                let Some(value) = metrics.get(&key) else {
                    violations.push(format!(
                        "group {group_key}: metric `{name}` missing for point {}",
                        p.key()
                    ));
                    continue;
                };
                match witness {
                    None => witness = Some((p, value)),
                    Some((wp, wv)) if wv != value => violations.push(format!(
                        "group {group_key}: `{name}` differs — {} = {} vs {} = {}",
                        wp.key(),
                        wv.render(),
                        p.key(),
                        value.render()
                    )),
                    Some(_) => {}
                }
            }
        }
    }
    violations
}

/// Serialises a metric map as a baseline document.
pub fn baseline_to_string(name: &str, metrics: &BTreeMap<String, MetricValue>) -> String {
    let mut map = BTreeMap::new();
    for (k, v) in metrics {
        map.insert(
            k.clone(),
            match v {
                MetricValue::Num(n) => Json::Num(*n),
                MetricValue::Str(s) => Json::Str(s.clone()),
            },
        );
    }
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::Num(1.0));
    doc.insert("name".into(), Json::Str(name.to_string()));
    doc.insert("metrics".into(), Json::Obj(map));
    json::to_string(&Json::Obj(doc))
}

/// Writes a baseline file (`lab bless`).
pub fn save_baseline(path: &Path, name: &str, metrics: &BTreeMap<String, MetricValue>) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, baseline_to_string(name, metrics))
        .map_err(|e| format!("write {}: {e}", path.display()))
}

/// Loads a baseline file back into a metric map.
pub fn load_baseline(path: &Path) -> Result<BTreeMap<String, MetricValue>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let version = doc.get("schema_version").and_then(Json::as_f64).unwrap_or(0.0);
    if version != 1.0 {
        return Err(format!(
            "{}: unsupported baseline schema_version {version}",
            path.display()
        ));
    }
    let Some(map) = doc.get("metrics").and_then(Json::as_obj) else {
        return Err(format!("{}: missing `metrics` object", path.display()));
    };
    let mut out = BTreeMap::new();
    for (k, v) in map {
        let Some(mv) = MetricValue::from_json(v) else {
            return Err(format!("{}: metric {k} has a non-scalar value", path.display()));
        };
        out.insert(k.clone(), mv);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate_with_pct(name: &str, band: f64) -> GateSpec {
        GateSpec {
            pct: vec![(name.to_string(), band)],
            ..GateSpec::default()
        }
    }

    fn num(v: f64) -> MetricValue {
        MetricValue::Num(v)
    }

    #[test]
    fn exact_default_and_pct_band() {
        let gate = gate_with_pct("wall", 10.0);
        assert_eq!(tolerance_for(&gate, "a/b/wall_s"), Tolerance::Pct(10.0));
        assert_eq!(tolerance_for(&gate, "a/b/bytes"), Tolerance::Exact);

        let base = BTreeMap::from([
            ("p/bytes".to_string(), num(1000.0)),
            ("p/wall_s".to_string(), num(2.0)),
        ]);
        let ok = BTreeMap::from([
            ("p/bytes".to_string(), num(1000.0)),
            ("p/wall_s".to_string(), num(2.19)),
        ]);
        assert!(!compare(&base, &ok, &gate).regressed());

        let slow = BTreeMap::from([
            ("p/bytes".to_string(), num(1000.0)),
            ("p/wall_s".to_string(), num(2.3)),
        ]);
        assert!(compare(&base, &slow, &gate).regressed());

        let drifted = BTreeMap::from([
            ("p/bytes".to_string(), num(1001.0)),
            ("p/wall_s".to_string(), num(2.0)),
        ]);
        assert!(compare(&base, &drifted, &gate).regressed());
    }

    #[test]
    fn missing_fails_new_informs() {
        let gate = GateSpec::default();
        let base = BTreeMap::from([("p/bytes".to_string(), num(1.0))]);
        let cur = BTreeMap::from([("p/other".to_string(), num(2.0))]);
        let report = compare(&base, &cur, &gate);
        assert!(report.regressed());
        let statuses: Vec<_> = report.rows.iter().map(|r| (r.key.as_str(), r.status)).collect();
        assert!(statuses.contains(&("p/bytes", DiffStatus::Missing)));
        assert!(statuses.contains(&("p/other", DiffStatus::New)));

        // New alone does not fail the gate.
        let cur2 = BTreeMap::from([
            ("p/bytes".to_string(), num(1.0)),
            ("p/other".to_string(), num(2.0)),
        ]);
        assert!(!compare(&base, &cur2, &gate).regressed());
    }

    #[test]
    fn digest_strings_stay_exact_under_pct() {
        let gate = gate_with_pct("digest", 50.0);
        let base = BTreeMap::from([("p/digest".to_string(), MetricValue::Str("abc".into()))]);
        let cur = BTreeMap::from([("p/digest".to_string(), MetricValue::Str("abd".into()))]);
        assert!(compare(&base, &cur, &gate).regressed());
    }

    #[test]
    fn invariants_catch_isa_divergence() {
        use crate::manifest::Axes;
        use crate::matrix::expand;
        let axes = Axes {
            bench: vec!["kernel_smoke".into()],
            isa: vec!["scalar".into(), "auto".into()],
            ..Axes::default()
        };
        let points = expand(&axes);
        let gate = GateSpec {
            invariant_across: vec!["isa".into()],
            invariant: vec!["kernel_digest".into()],
            ..GateSpec::default()
        };
        let same = BTreeMap::from([
            (
                format!("{}/kernel_digest", points[0].key()),
                MetricValue::Str("aaaa".into()),
            ),
            (
                format!("{}/kernel_digest", points[1].key()),
                MetricValue::Str("aaaa".into()),
            ),
        ]);
        assert!(check_invariants(&points, &same, &gate).is_empty());

        let diverged = BTreeMap::from([
            (
                format!("{}/kernel_digest", points[0].key()),
                MetricValue::Str("aaaa".into()),
            ),
            (
                format!("{}/kernel_digest", points[1].key()),
                MetricValue::Str("bbbb".into()),
            ),
        ]);
        let violations = check_invariants(&points, &diverged, &gate);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("kernel_digest"));

        let missing = BTreeMap::from([(
            format!("{}/kernel_digest", points[0].key()),
            MetricValue::Str("aaaa".into()),
        )]);
        assert!(!check_invariants(&points, &missing, &gate).is_empty());
    }

    #[test]
    fn baselines_round_trip() {
        let metrics = BTreeMap::from([
            ("p/bytes".to_string(), num(123.0)),
            ("p/digest".to_string(), MetricValue::Str("ff00".into())),
        ]);
        let tmp = std::env::temp_dir().join(format!("medsplit-lab-baseline-{}.json", std::process::id()));
        save_baseline(&tmp, "t", &metrics).unwrap();
        assert_eq!(load_baseline(&tmp).unwrap(), metrics);
        let _ = std::fs::remove_file(tmp);
    }

    #[test]
    fn render_lists_notable_rows() {
        let gate = GateSpec::default();
        let base = BTreeMap::from([("p/a".to_string(), num(1.0)), ("p/b".to_string(), num(2.0))]);
        let cur = BTreeMap::from([("p/a".to_string(), num(1.0)), ("p/b".to_string(), num(3.0))]);
        let report = compare(&base, &cur, &gate);
        let table = report.render(false);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("p/b"));
        assert!(!table.contains("p/a "));
        assert!(table.contains("1 ok, 1 regressed"));
    }
}
