//! A minimal hand-rolled JSON reader/writer — the subset the lab's
//! artifacts need (objects, arrays, strings, numbers, booleans, null).
//!
//! The workspace is fully offline and zero-dep by policy, so like
//! `medsplit-telemetry`'s JSONL codec this module implements exactly the
//! surface the lab uses: parsing baselines and `metrics.json` back in,
//! and writing canonical (sorted-key, stable-float) documents out so the
//! same inputs always produce byte-identical artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted — canonical form — on write; parse
    /// order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Formats a float the canonical way: integral values get a trailing
/// `.0`-free integer form, everything else uses Rust's shortest
/// round-trippable representation (deterministic for a given bit
/// pattern).
pub fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises a value canonically: object keys in sorted order, two-space
/// indentation, stable float formatting. Byte-identical output for equal
/// inputs.
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(v, 0, &mut out);
    out.push('\n');
    out
}

fn write_value(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&fmt_num(*n)),
        Json::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\": ");
                write_value(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

/// Parses a JSON document. Returns an error message with a byte offset
/// on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(text, bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(text, bytes, pos)?;
                map.insert(key, val);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut out = String::new();
            loop {
                let Some(&c) = bytes.get(*pos) else {
                    return Err("unterminated string".into());
                };
                match c {
                    b'"' => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    b'\\' => {
                        *pos += 1;
                        let Some(&esc) = bytes.get(*pos) else {
                            return Err("unterminated escape".into());
                        };
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = text.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                out.push(char::from_u32(code).ok_or(format!("bad codepoint {code}"))?);
                                *pos += 4;
                            }
                            other => return Err(format!("unknown escape \\{}", other as char)),
                        }
                        *pos += 1;
                    }
                    _ => {
                        // Consume a full UTF-8 scalar, not just one byte.
                        let rest = &text[*pos..];
                        let ch = rest.chars().next().ok_or("invalid UTF-8")?;
                        out.push(ch);
                        *pos += ch.len_utf8();
                    }
                }
            }
        }
        b't' if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        b'f' if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        b'n' if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        _ => {
            let start = *pos;
            while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            text[start..*pos]
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("malformed number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_documents() {
        let mut obj = BTreeMap::new();
        obj.insert("b".to_string(), Json::Num(2.5));
        obj.insert("a".to_string(), Json::Str("x\"y".into()));
        obj.insert(
            "arr".to_string(),
            Json::Arr(vec![Json::Num(1.0), Json::Bool(false), Json::Null]),
        );
        let doc = Json::Obj(obj);
        let text = to_string(&doc);
        assert_eq!(parse(&text).unwrap(), doc);
        // Canonical: serialising the parse is byte-identical.
        assert_eq!(to_string(&parse(&text).unwrap()), text);
    }

    #[test]
    fn fmt_num_is_stable() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-0.125), "-0.125");
        assert_eq!(fmt_num(1234567.0), "1234567");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"m": {"k": [1, "two", true]}, "n": -4.5e1}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-45.0));
        let inner = v.get("m").and_then(|m| m.get("k")).unwrap();
        assert_eq!(
            inner,
            &Json::Arr(vec![Json::Num(1.0), Json::Str("two".into()), Json::Bool(true)])
        );
    }
}
