//! Host fingerprinting: every run directory and committed bench report
//! records what machine produced it, so trajectories across PRs are
//! attributable.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::json::Json;

/// The host facts a run manifest records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Dispatched kernel ISA (`scalar` / `avx2` / `neon`).
    pub isa: String,
    /// `std::thread::available_parallelism`.
    pub cores: usize,
    /// `rustc --version` output, or `"unknown"` offline.
    pub rustc: String,
    /// Compile-time OS (`linux`, `macos`, ...).
    pub os: String,
    /// Compile-time architecture (`x86_64`, `aarch64`, ...).
    pub arch: String,
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Fingerprints the current host. The rustc probe is cached; the ISA is
/// re-read every call because benchmarks override it at runtime.
pub fn fingerprint() -> HostFingerprint {
    static RUSTC: OnceLock<String> = OnceLock::new();
    HostFingerprint {
        isa: medsplit_tensor::simd::active_isa().name().to_string(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rustc: RUSTC.get_or_init(rustc_version).clone(),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
    }
}

impl HostFingerprint {
    /// The fingerprint as a JSON object value.
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("isa".to_string(), Json::Str(self.isa.clone()));
        m.insert("cores".to_string(), Json::Num(self.cores as f64));
        m.insert("rustc".to_string(), Json::Str(self.rustc.clone()));
        m.insert("os".to_string(), Json::Str(self.os.clone()));
        m.insert("arch".to_string(), Json::Str(self.arch.clone()));
        Json::Obj(m)
    }

    /// The fingerprint as a compact inline JSON string (for the
    /// single-line `host` field of `BENCH_*.json`).
    pub fn to_inline_json(&self) -> String {
        format!(
            "{{\"arch\": \"{}\", \"cores\": {}, \"isa\": \"{}\", \"os\": \"{}\", \"rustc\": \"{}\"}}",
            crate::json::escape(&self.arch),
            self.cores,
            crate::json::escape(&self.isa),
            crate::json::escape(&self.os),
            crate::json::escape(&self.rustc),
        )
    }
}

/// Current time as an ISO-8601 UTC timestamp (`2026-08-08T12:34:56Z`),
/// derived from the Unix epoch with a hand-rolled civil-date conversion
/// (no external time crate). Timestamps only ever land in artifacts that
/// are excluded from determinism digests.
pub fn utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    utc_from_unix(secs)
}

/// Converts Unix seconds to an ISO-8601 UTC timestamp. Uses the classic
/// days-from-civil inverse (Howard Hinnant's algorithm).
pub fn utc_from_unix(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // civil_from_days
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_conversion_known_dates() {
        assert_eq!(utc_from_unix(0), "1970-01-01T00:00:00Z");
        assert_eq!(utc_from_unix(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(utc_from_unix(1_754_611_200), "2025-08-08T00:00:00Z");
        assert_eq!(utc_from_unix(1_704_067_199), "2023-12-31T23:59:59Z");
    }

    #[test]
    fn fingerprint_is_populated() {
        let h = fingerprint();
        assert!(!h.isa.is_empty());
        assert!(h.cores >= 1);
        assert!(!h.os.is_empty());
        let inline = h.to_inline_json();
        assert!(inline.starts_with('{') && inline.ends_with('}'));
        assert!(crate::json::parse(&inline).is_ok());
    }
}
