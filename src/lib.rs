//! # medsplit
//!
//! Privacy-preserving split learning for geo-distributed medical big-data
//! platforms — a from-scratch Rust reproduction of Jeon et al.,
//! *Privacy-Preserving Deep Learning Computation for Geo-Distributed
//! Medical Big-Data Platforms* (DSN 2019).
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! - [`tensor`] — dense f32 tensors, convolution kernels, the exact wire
//!   format ([`medsplit_tensor`]),
//! - [`nn`] — layers, optimisers and the VGG/ResNet model zoo
//!   ([`medsplit_nn`]),
//! - [`data`] — synthetic CIFAR-like datasets, partitioning and the
//!   proportional-minibatch policy ([`medsplit_data`]),
//! - [`simnet`] — the star-topology network simulator with exact byte
//!   accounting ([`medsplit_simnet`]),
//! - [`core`] — the split-learning protocol itself ([`medsplit_core`]),
//! - [`baselines`] — FedAvg, large-scale sync SGD, local-only and
//!   centralised training ([`medsplit_baselines`]),
//! - [`privacy`] — leakage metrics and reconstruction attacks
//!   ([`medsplit_privacy`]),
//! - [`serve`] — split-inference serving with dynamic batching, admission
//!   control and latency accounting ([`medsplit_serve`]),
//! - [`fleet`] — sharded multi-tenant serving: consistent-hash routing
//!   over server replicas with quotas, weight-version pinning and
//!   chaos-hardened drain/rejoin ([`medsplit_fleet`]),
//! - [`telemetry`] — tracing spans, the metrics registry and trace
//!   exporters; off until `MEDSPLIT_TRACE=1` ([`medsplit_telemetry`]).
//!
//! ## Quickstart
//!
//! ```
//! use medsplit::core::{SplitConfig, SplitTrainer};
//! use medsplit::data::{partition, Partition, SyntheticTabular};
//! use medsplit::nn::{Architecture, MlpConfig};
//! use medsplit::simnet::{MemoryTransport, StarTopology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three hospitals, one server; raw data never leaves a hospital.
//! let arch = Architecture::Mlp(MlpConfig::small(8, 3));
//! let all = SyntheticTabular::new(3, 8, 0).generate(120)?;
//! let train = all.subset(&(0..90).collect::<Vec<_>>())?;
//! let test = all.subset(&(90..120).collect::<Vec<_>>())?;
//! let shards = partition(&train, 3, &Partition::Iid, 7)?;
//! let transport = MemoryTransport::new(StarTopology::new(3));
//!
//! let config = SplitConfig { rounds: 20, eval_every: 10, ..SplitConfig::default() };
//! let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport)?;
//! let history = trainer.run()?;
//! println!("accuracy {:.1}% after {} transmitted bytes",
//!          history.final_accuracy * 100.0, history.stats.total_bytes);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use medsplit_baselines as baselines;
pub use medsplit_core as core;
pub use medsplit_data as data;
pub use medsplit_fleet as fleet;
pub use medsplit_nn as nn;
pub use medsplit_privacy as privacy;
pub use medsplit_serve as serve;
pub use medsplit_simnet as simnet;
pub use medsplit_telemetry as telemetry;
pub use medsplit_tensor as tensor;
