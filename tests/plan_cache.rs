//! Planned (cached-panel) execution is bit-identical to the direct path.
//!
//! The plan cache prepacks weight panels once and reuses them across
//! calls; blocking choices come from the deterministic autotuner instead
//! of the per-call driver. None of that may change result bits: every
//! output element still streams the full depth range in ascending order
//! through the same fused microkernels. These tests pin the guarantee
//! for dense and conv, forward and backward, across `MEDSPLIT_ISA`
//! settings and pool sizes, and across optimizer-update invalidations
//! (a repacked plan must match the direct path on the *updated*
//! weights).
//!
//! `pool::set_num_threads` and `simd::set_isa` are process-global and
//! the test harness runs tests concurrently, so every test here
//! serialises on [`POOL_LOCK`] and restores one thread / the detected
//! ISA before releasing it.

use std::sync::Mutex;

use medsplit::nn::{Dense, Layer, Mode, Optimizer, Sgd};
use medsplit_tensor::ops::conv::{
    conv2d_backward, conv2d_backward_planned, conv2d_forward, conv2d_forward_planned, Conv2dSpec,
};
use medsplit_tensor::{init::rng_from_seed, pool, simd, ConvPlan, GemmPlan, Tensor};
use proptest::prelude::*;

/// Serialises every test that changes the global pool size or ISA.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` once under the portable scalar ISA and once under the
/// auto-detected one, restoring detection afterwards; returns both
/// results for exact comparison.
fn with_isas<R>(mut body: impl FnMut() -> R) -> (R, R) {
    let _guard = POOL_LOCK.lock().unwrap();
    assert!(simd::set_isa(simd::Isa::Scalar));
    let scalar = body();
    assert!(simd::set_isa(simd::detect()));
    let native = body();
    (scalar, native)
}

/// Runs `body` once per pool size, restoring a single thread afterwards.
fn with_thread_counts<R>(counts: &[usize], mut body: impl FnMut(usize) -> R) -> Vec<R> {
    let _guard = POOL_LOCK.lock().unwrap();
    let out = counts
        .iter()
        .map(|&t| {
            pool::set_num_threads(t);
            body(t)
        })
        .collect();
    pool::set_num_threads(1);
    out
}

/// Dense shape sweep crossing the MR=6 / NR=16 tile boundaries.
fn dense_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    const INTERESTING: [usize; 10] = [1, 2, 5, 6, 7, 15, 16, 17, 33, 64];
    fn dim() -> impl Strategy<Value = usize> {
        (0usize..INTERESTING.len()).prop_map(|i| INTERESTING[i])
    }
    (dim(), dim(), dim())
}

/// Planned dense forward (`x·Wᵀ`) and backward (`g·W`) against the
/// direct tensor ops, for one shape, at the current pool/ISA setting.
fn planned_vs_direct_dense(m: usize, k: usize, n: usize) -> [(Tensor, Tensor); 2] {
    let mut rng = rng_from_seed((m * 1_000_003 + k * 1009 + n) as u64);
    let w = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
    let x = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
    let g = Tensor::rand_uniform([m, n], -2.0, 2.0, &mut rng);
    let mut slot = None;
    let plan = GemmPlan::ensure(&mut slot, &w, 0).unwrap();
    let fwd = (plan.matmul_nt(&x).unwrap(), x.matmul_nt(&w).unwrap());
    let bwd = (plan.matmul_nn(&g, &w).unwrap(), g.matmul(&w).unwrap());
    [fwd, bwd]
}

proptest! {
    /// Planned dense forward/backward is bit-identical to the direct
    /// path across pool sizes (1, 2, and a deliberately odd 7).
    #[test]
    fn planned_dense_bit_identical_across_thread_counts((m, k, n) in dense_dims()) {
        let runs = with_thread_counts(&[1, 2, 7], |_| planned_vs_direct_dense(m, k, n));
        for run in &runs {
            for (planned, direct) in run {
                prop_assert_eq!(planned.as_slice(), direct.as_slice());
            }
        }
        // And across thread counts: run 0 is the reference.
        for run in &runs[1..] {
            for (pair, reference) in run.iter().zip(&runs[0]) {
                prop_assert_eq!(pair.0.as_slice(), reference.0.as_slice());
            }
        }
    }

    /// Planned dense forward/backward is bit-identical to the direct
    /// path under both the scalar and the auto-detected ISA, and the
    /// two ISAs agree with each other.
    #[test]
    fn planned_dense_bit_identical_across_isas((m, k, n) in dense_dims()) {
        let (scalar, native) = with_isas(|| planned_vs_direct_dense(m, k, n));
        for run in [&scalar, &native] {
            for (planned, direct) in run {
                prop_assert_eq!(planned.as_slice(), direct.as_slice());
            }
        }
        for (s, n) in scalar.iter().zip(&native) {
            prop_assert_eq!(s.0.as_slice(), n.0.as_slice());
        }
    }
}

/// Conv shape sweep: channel/spatial sizes crossing the NR tile
/// boundary of the patch dimension, stride 1 and 2, with padding.
fn conv_cases() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize)> {
    // (batch, in_ch, hw, out_ch, stride, kernel)
    (1usize..3, 1usize..4, 4usize..9, 1usize..5, 1usize..3, 2usize..4)
}

/// Planned conv forward + backward against the direct path for one
/// case; returns (forward, dx, dw, db) pairs of (planned, direct).
#[allow(clippy::type_complexity)]
fn planned_vs_direct_conv(
    n: usize,
    c: usize,
    hw: usize,
    o: usize,
    stride: usize,
    kernel: usize,
) -> Vec<(Tensor, Tensor)> {
    let spec = Conv2dSpec::square(kernel, stride, 1);
    let mut rng = rng_from_seed((n * 31 + c * 311 + hw * 3001 + o * 13 + stride) as u64);
    let x = Tensor::rand_uniform([n, c, hw, hw], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform([o, c, kernel, kernel], -1.0, 1.0, &mut rng);
    let bias = Tensor::rand_uniform([o], -0.5, 0.5, &mut rng);
    let mut slot = None;
    let plan = ConvPlan::ensure(&mut slot, &w, spec, 0).unwrap();
    let fwd_p = conv2d_forward_planned(&x, plan, Some(&bias)).unwrap();
    let fwd_d = conv2d_forward(&x, &w, Some(&bias), spec).unwrap();
    let g = Tensor::rand_uniform(fwd_d.shape().clone(), -1.0, 1.0, &mut rng);
    let (dx_p, dw_p, db_p) = conv2d_backward_planned(&x, &w, &g, plan).unwrap();
    let (dx_d, dw_d, db_d) = conv2d_backward(&x, &w, &g, spec).unwrap();
    vec![(fwd_p, fwd_d), (dx_p, dx_d), (dw_p, dw_d), (db_p, db_d)]
}

proptest! {
    /// Planned conv forward and all three backward gradients are
    /// bit-identical to the direct path across pool sizes.
    #[test]
    fn planned_conv_bit_identical_across_thread_counts(
        (n, c, hw, o, stride, kernel) in conv_cases()
    ) {
        let runs = with_thread_counts(&[1, 2, 7], |_| {
            planned_vs_direct_conv(n, c, hw, o, stride, kernel)
        });
        for run in &runs {
            for (planned, direct) in run {
                prop_assert_eq!(planned.as_slice(), direct.as_slice());
            }
        }
        for run in &runs[1..] {
            for (pair, reference) in run.iter().zip(&runs[0]) {
                prop_assert_eq!(pair.0.as_slice(), reference.0.as_slice());
            }
        }
    }

    /// Planned conv is bit-identical to the direct path under both ISAs.
    #[test]
    fn planned_conv_bit_identical_across_isas(
        (n, c, hw, o, stride, kernel) in conv_cases()
    ) {
        let (scalar, native) = with_isas(|| {
            planned_vs_direct_conv(n, c, hw, o, stride, kernel)
        });
        for run in [&scalar, &native] {
            for (planned, direct) in run {
                prop_assert_eq!(planned.as_slice(), direct.as_slice());
            }
        }
        for (s, n) in scalar.iter().zip(&native) {
            prop_assert_eq!(s.0.as_slice(), n.0.as_slice());
        }
    }
}

/// After an optimizer step invalidates the plan, the repacked plan must
/// reproduce the direct path on the *updated* weights — at any thread
/// count and under both ISAs.
#[test]
fn invalidated_plan_matches_direct_after_update() {
    let _guard = POOL_LOCK.lock().unwrap();
    for threads in [1usize, 2, 7] {
        pool::set_num_threads(threads);
        for isa in [simd::Isa::Scalar, simd::detect()] {
            assert!(simd::set_isa(isa));
            let mut rng = rng_from_seed(42);
            let mut layer = Dense::new(19, 13, &mut rng);
            let mut opt = Sgd::new(0.05).with_momentum(0.9);
            let x = Tensor::rand_uniform([5, 19], -1.0, 1.0, &mut rng);
            for step in 0..4 {
                let y = layer.forward(&x, Mode::Train).unwrap();
                // The layer's plan was (re)built for the current weights:
                // its output must equal the direct tensor math on them.
                let mut params = Vec::new();
                layer.visit_params(&mut |p| params.push(p.value.clone()));
                let direct = x.matmul_nt(&params[0]).unwrap().try_add(&params[1]).unwrap();
                assert_eq!(
                    y.as_slice(),
                    direct.as_slice(),
                    "planned forward diverged at step {step} ({threads} threads, {} isa)",
                    isa.name()
                );
                let dx = layer.backward(&Tensor::ones(y.shape().clone())).unwrap();
                let dx_direct = Tensor::ones(y.shape().clone()).matmul(&params[0]).unwrap();
                assert_eq!(dx.as_slice(), dx_direct.as_slice());
                opt.step_and_zero(&mut layer);
            }
        }
        assert!(simd::set_isa(simd::detect()));
    }
    pool::set_num_threads(1);
}

/// A snapshot restore bumps parameter versions, so a stale plan is
/// rebuilt rather than served: the forward after a restore must match
/// the direct math on the restored weights.
#[test]
fn restore_invalidates_plan() {
    use medsplit::nn::vectorize::{load_snapshot_vector, snapshot_vector};
    let _guard = POOL_LOCK.lock().unwrap();
    pool::set_num_threads(1);
    let mut rng = rng_from_seed(7);
    let mut a = Dense::new(11, 9, &mut rng);
    let mut b = Dense::new(11, 9, &mut rng);
    let x = Tensor::rand_uniform([3, 11], -1.0, 1.0, &mut rng);
    // Warm b's plan on its own weights, then restore a's snapshot into it.
    let _ = b.forward(&x, Mode::Eval).unwrap();
    let snap = snapshot_vector(&mut a);
    load_snapshot_vector(&mut b, &snap).unwrap();
    let ya = a.forward(&x, Mode::Eval).unwrap();
    let yb = b.forward(&x, Mode::Eval).unwrap();
    assert_eq!(ya.as_slice(), yb.as_slice(), "restored layer served a stale plan");
}
