//! Correctness of the parallel packed compute backend.
//!
//! The worker pool's decomposition is derived from the problem shape, not
//! the thread count, so every kernel is *bit-identical* across pool
//! sizes; the register-blocked microkernels perform the same per-element
//! fused operations in the same order on every instruction set, so
//! kernels are also bit-identical across `MEDSPLIT_ISA` settings. These
//! tests pin both guarantees, compare the packed GEMM against an
//! embedded copy of the seed repository's kernel (to the documented
//! tolerance — the fused microkernels round once per step where the seed
//! kernel rounds twice, so bit-equality with the seed is no longer the
//! contract), and assert the zero-steady-state-allocation property of
//! the conv forward pass, including when the warmup must reach every
//! pool worker.
//!
//! `pool::set_num_threads` and `simd::set_isa` are process-global and
//! the test harness runs tests concurrently, so every test here
//! serialises on [`POOL_LOCK`] and restores one thread / the detected
//! ISA before releasing it.

use std::sync::Mutex;

use medsplit::core::{ComputeModel, Scheduling, SplitConfig, SplitPoint, SplitTrainer};
use medsplit::data::{InMemoryDataset, MinibatchPolicy, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};
use medsplit_tensor::ops::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use medsplit_tensor::{init::rng_from_seed, pool, scratch, simd, Tensor};
use proptest::prelude::*;

/// Serialises every test that changes the global pool size or ISA.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` once under the portable scalar ISA and once under the
/// auto-detected one, restoring detection afterwards; returns both
/// results for exact comparison.
fn with_isas<R>(mut body: impl FnMut() -> R) -> (R, R) {
    let _guard = POOL_LOCK.lock().unwrap();
    assert!(simd::set_isa(simd::Isa::Scalar));
    let scalar = body();
    assert!(simd::set_isa(simd::detect()));
    let native = body();
    (scalar, native)
}

/// Runs `body` once per pool size, restoring a single thread afterwards.
fn with_thread_counts<R>(counts: &[usize], mut body: impl FnMut(usize) -> R) -> Vec<R> {
    let _guard = POOL_LOCK.lock().unwrap();
    let out = counts
        .iter()
        .map(|&t| {
            pool::set_num_threads(t);
            body(t)
        })
        .collect();
    pool::set_num_threads(1);
    out
}

/// The seed repository's GEMM: cache-blocked triple loop, including its
/// `aval == 0.0` skip branch. The packed backend must reproduce it
/// bit-for-bit at any thread count (the skip only elides exact zeros,
/// whose contribution `0.0 * b` is `+0.0`, absorbed by `+=`).
fn seed_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    const BLOCK: usize = 64;
    let mut c = vec![0.0f32; m * n];
    for ib in (0..m).step_by(BLOCK) {
        let imax = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let kmax = (kb + BLOCK).min(k);
            for i in ib..imax {
                let crow = &mut c[i * n..(i + 1) * n];
                for p in kb..kmax {
                    let aval = a[i * k + p];
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..p * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aval * bv;
                    }
                }
            }
        }
    }
    c
}

/// GEMM dimension sweep: degenerate (1xN / Nx1), below, at, and past the
/// 64-row panel and 128-deep K-block boundaries.
fn gemm_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    const INTERESTING: [usize; 13] = [1, 2, 3, 5, 9, 17, 63, 64, 65, 66, 127, 128, 130];
    fn dim() -> impl Strategy<Value = usize> {
        (0usize..INTERESTING.len()).prop_map(|i| INTERESTING[i])
    }
    (dim(), dim(), dim())
}

fn rand_mat(rng: &mut impl rand::Rng, r: usize, c: usize) -> Tensor {
    Tensor::rand_uniform([r, c], -2.0, 2.0, rng)
}

proptest! {
    /// matmul / matmul_tn / matmul_nt are bit-identical across pool
    /// sizes (1, 2, and a deliberately odd 7) for arbitrary shapes.
    #[test]
    fn matmul_family_bit_identical_across_thread_counts((m, k, n) in gemm_dims()) {
        let mut rng = rng_from_seed((m * 1_000_003 + k * 1009 + n) as u64);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        let at = rand_mat(&mut rng, k, m);
        let bt = rand_mat(&mut rng, n, k);

        let runs = with_thread_counts(&[1, 2, 7], |_| {
            (
                a.matmul(&b).unwrap(),
                at.matmul_tn(&b).unwrap(),
                a.matmul_nt(&bt).unwrap(),
            )
        });
        let (r1, r2, r7) = (&runs[0], &runs[1], &runs[2]);
        prop_assert_eq!(r1.0.as_slice(), r2.0.as_slice());
        prop_assert_eq!(r1.0.as_slice(), r7.0.as_slice());
        prop_assert_eq!(r1.1.as_slice(), r2.1.as_slice());
        prop_assert_eq!(r1.1.as_slice(), r7.1.as_slice());
        prop_assert_eq!(r1.2.as_slice(), r2.2.as_slice());
        prop_assert_eq!(r1.2.as_slice(), r7.2.as_slice());
    }

    /// The packed GEMM agrees with the seed kernel within the documented
    /// 1e-5 relative tolerance at any pool size. (It is no longer
    /// bit-identical to the seed: the microkernels fuse each
    /// multiply-add into one rounding where the seed kernel rounds
    /// twice. Bit-equality guarantees now run across thread counts and
    /// ISAs, pinned by the other tests in this file.)
    #[test]
    fn packed_gemm_matches_seed_kernel((m, k, n) in gemm_dims()) {
        let mut rng = rng_from_seed((m * 31 + k * 7 + n) as u64 ^ 0xA5A5);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        let reference = seed_gemm(a.as_slice(), b.as_slice(), m, k, n);

        let runs = with_thread_counts(&[1, 2, 7], |_| a.matmul(&b).unwrap());
        for out in &runs {
            for (got, want) in out.as_slice().iter().zip(&reference) {
                prop_assert!(
                    (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                    "got {got}, want {want}"
                );
            }
        }
    }

    /// Convolution forward and backward are bit-identical across pool
    /// sizes, including shapes that don't tile the batch chunking evenly.
    #[test]
    fn conv2d_bit_identical_across_thread_counts(
        n in 1usize..=5,
        c in 1usize..=3,
        o in 1usize..=4,
        hw in 3usize..=7,
    ) {
        let mut rng = rng_from_seed((n * 71 + c * 13 + o * 5 + hw) as u64);
        let input = Tensor::rand_uniform([n, c, hw, hw], -1.0, 1.0, &mut rng);
        let weight = Tensor::rand_uniform([o, c, 3, 3], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([o], -0.1, 0.1, &mut rng);
        let spec = Conv2dSpec::square(3, 1, 1);

        let runs = with_thread_counts(&[1, 2, 7], |_| {
            let out = conv2d_forward(&input, &weight, Some(&bias), spec).unwrap();
            let grad_out = out.scale(0.5);
            let (gi, gw, gb) =
                conv2d_backward(&input, &weight, &grad_out, spec).unwrap();
            (out, gi, gw, gb)
        });
        for other in &runs[1..] {
            prop_assert_eq!(runs[0].0.as_slice(), other.0.as_slice());
            prop_assert_eq!(runs[0].1.as_slice(), other.1.as_slice());
            prop_assert_eq!(runs[0].2.as_slice(), other.2.as_slice());
            prop_assert_eq!(runs[0].3.as_slice(), other.3.as_slice());
        }
    }
}

/// Conv forward allocates nothing per step once the thread-local scratch
/// arena is warm (single-thread pool so the warmup lands on one arena).
#[test]
fn conv_forward_zero_allocations_after_warmup() {
    let _guard = POOL_LOCK.lock().unwrap();
    pool::set_num_threads(1);

    let mut rng = rng_from_seed(99);
    let input = Tensor::rand_uniform([2, 3, 12, 12], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([8, 3, 3, 3], -0.5, 0.5, &mut rng);
    let bias = Tensor::rand_uniform([8], -0.1, 0.1, &mut rng);
    let spec = Conv2dSpec::square(3, 1, 1);

    // Warm the arena.
    for _ in 0..2 {
        conv2d_forward(&input, &weight, Some(&bias), spec).unwrap();
    }
    let before = scratch::stats();
    for _ in 0..10 {
        conv2d_forward(&input, &weight, Some(&bias), spec).unwrap();
    }
    let after = scratch::stats();
    assert_eq!(
        after.allocations, before.allocations,
        "conv forward grew the scratch arena after warmup"
    );
    assert_eq!(after.allocated_bytes, before.allocated_bytes);
    assert!(
        after.acquisitions > before.acquisitions,
        "conv forward stopped using the scratch arena"
    );
}

/// A small end-to-end split-training run; returns the per-round loss
/// trajectory, which is a bit-level fingerprint of every kernel in the
/// forward/backward/update path.
fn run_split() -> Vec<f32> {
    let all = SyntheticTabular::new(3, 6, 5).generate(60).unwrap();
    let train: InMemoryDataset = all.subset(&(0..48).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(48..60).collect::<Vec<_>>()).unwrap();
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 6,
        hidden: vec![16, 8],
        num_classes: 3,
    });
    let transport = MemoryTransport::new(StarTopology::new(1));
    let config = SplitConfig {
        split: SplitPoint::Default,
        scheduling: Scheduling::Aggregate,
        minibatch: MinibatchPolicy::Fixed(8),
        lr: LrSchedule::Constant(0.1),
        momentum: 0.9,
        rounds: 3,
        eval_every: 0,
        seed: 21,
        compute: ComputeModel::off(),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, vec![train], test, &transport).unwrap();
    let history = trainer.run().unwrap();
    history.records.iter().map(|r| r.mean_loss).collect()
}

/// One full split-training run at 4 threads reproduces the 1-thread loss
/// trajectory. The backend's decomposition is shape-derived, so this
/// holds exactly, not just within tolerance.
#[test]
fn split_training_round_deterministic_across_thread_counts() {
    let runs = with_thread_counts(&[1, 4], |_| run_split());
    assert_eq!(
        runs[0], runs[1],
        "split training diverged between 1 and 4 threads"
    );
}

/// `MEDSPLIT_ISA=scalar` and auto-dispatch produce bit-identical outputs
/// for the whole kernel family: all three GEMM variants (with edge
/// tiles), conv forward/backward, and the dispatched elementwise ops.
#[test]
fn kernels_bit_identical_across_isas() {
    let mut rng = rng_from_seed(1234);
    // Shapes straddle the MR=6 / NR=16 tile edges and a KC split.
    let a = rand_mat(&mut rng, 67, 130);
    let b = rand_mat(&mut rng, 130, 49);
    let at = rand_mat(&mut rng, 130, 67);
    let bt = rand_mat(&mut rng, 49, 130);
    let input = Tensor::rand_uniform([2, 3, 9, 9], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([5, 3, 3, 3], -0.5, 0.5, &mut rng);
    let spec = Conv2dSpec::square(3, 1, 1);
    let x = Tensor::rand_uniform([777], -2.0, 2.0, &mut rng);
    let g = Tensor::rand_uniform([777], -1.0, 1.0, &mut rng);

    let (scalar, native) = with_isas(|| {
        let conv = conv2d_forward(&input, &weight, None, spec).unwrap();
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &conv.scale(0.5), spec).unwrap();
        let mut acc = x.clone();
        acc.axpy(0.37, &g).unwrap();
        acc.add_assign(&g).unwrap();
        acc.scale_inplace(-1.25);
        vec![
            a.matmul(&b).unwrap(),
            at.matmul_tn(&b).unwrap(),
            a.matmul_nt(&bt).unwrap(),
            conv,
            gi,
            gw,
            gb,
            x.relu(),
            x.relu().relu_backward(&g).unwrap(),
            x.leaky_relu(0.01),
            x.leaky_relu_backward(0.01, &g).unwrap(),
            acc,
            (&x * &g),
            (&x + &g),
        ]
    });
    for (i, (s, v)) in scalar.iter().zip(&native).enumerate() {
        let sb: Vec<u32> = s.as_slice().iter().map(|f| f.to_bits()).collect();
        let vb: Vec<u32> = v.as_slice().iter().map(|f| f.to_bits()).collect();
        assert_eq!(sb, vb, "kernel #{i} diverged between scalar and native ISA");
    }
}

/// A full training run is bit-identical between `MEDSPLIT_ISA=scalar`
/// and auto-dispatch — the acceptance guarantee for the SIMD backend.
#[test]
fn split_training_bit_identical_across_isas() {
    let (scalar, native) = with_isas(run_split);
    assert_eq!(
        scalar, native,
        "split training diverged between scalar and native ISA"
    );
}

/// The bench-harness failure mode behind the nonzero
/// `scratch_allocs_per_step` rows: workers spawned by an earlier,
/// larger pool persist, and jobs go to whichever workers win the queue
/// race — so a plain warmup call misses some arenas. `pool::warmup`
/// broadcasts to every spawned worker; after it, conv forward allocates
/// nothing at *any* smaller thread count.
#[test]
fn conv_warmup_covers_every_pool_worker() {
    let _guard = POOL_LOCK.lock().unwrap();

    let mut rng = rng_from_seed(4242);
    let input = Tensor::rand_uniform([4, 3, 12, 12], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([8, 3, 3, 3], -0.5, 0.5, &mut rng);
    let bias = Tensor::rand_uniform([8], -0.1, 0.1, &mut rng);
    let spec = Conv2dSpec::square(3, 1, 1);
    let body = || {
        conv2d_forward(&input, &weight, Some(&bias), spec).unwrap();
    };

    // Leave four workers alive, then shrink the pool: the 2-thread rounds
    // below can land on any of them.
    pool::set_num_threads(4);
    pool::warmup(body);
    pool::set_num_threads(2);
    pool::warmup(body);

    let before = scratch::stats();
    for _ in 0..20 {
        body();
    }
    let after = scratch::stats();
    pool::set_num_threads(1);
    assert_eq!(
        after.allocations, before.allocations,
        "a cold pool worker grew its scratch arena after a broadcast warmup"
    );
    assert!(after.acquisitions > before.acquisitions);
}
