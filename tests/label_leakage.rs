//! End-to-end label leakage: what an honest-but-curious server can read
//! from the live protocol traffic — and how the U-shaped variant stops it.

use std::time::Duration;

use parking_lot::Mutex;

use medsplit::core::{Scheduling, SplitConfig, SplitTrainer, UShapeTrainer};
use medsplit::data::{InMemoryDataset, MinibatchPolicy, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::privacy::label_recovery_rate;
use medsplit::simnet::{Envelope, MemoryTransport, MessageKind, NetError, NodeId, StarTopology, Transport};
use medsplit::tensor::Tensor;

/// A transport decorator that records every payload of one message kind —
/// the "curious server" tapping its own inbox.
struct RecordingTransport {
    inner: MemoryTransport,
    kind: MessageKind,
    captured: Mutex<Vec<Tensor>>,
}

impl RecordingTransport {
    fn new(inner: MemoryTransport, kind: MessageKind) -> Self {
        RecordingTransport {
            inner,
            kind,
            captured: Mutex::new(Vec::new()),
        }
    }

    fn captured(&self) -> Vec<Tensor> {
        self.captured.lock().clone()
    }
}

impl Transport for RecordingTransport {
    fn send(&self, env: Envelope) -> Result<(), NetError> {
        if env.kind == self.kind {
            if let Ok(t) = Tensor::from_bytes(env.payload.clone()) {
                self.captured.lock().push(t);
            }
        }
        self.inner.send(env)
    }
    fn try_recv(&self, node: NodeId) -> Option<Envelope> {
        self.inner.try_recv(node)
    }
    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Result<Envelope, NetError> {
        self.inner.recv_timeout(node, timeout)
    }
    fn stats(&self) -> &medsplit::simnet::NetStats {
        self.inner.stats()
    }
    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

/// A single-class shard: every sample has the same known label, so row
/// order inside the platform's private minibatch does not matter.
fn single_class_shard(class: usize, n: usize) -> InMemoryDataset {
    let ds = SyntheticTabular::new(3, 6, 7).generate(3 * n).unwrap();
    let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.labels()[i] == class).collect();
    ds.subset(&idx[..n]).unwrap()
}

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 6,
        hidden: vec![12, 8],
        num_classes: 3,
    })
}

fn config(rounds: usize) -> SplitConfig {
    SplitConfig {
        rounds,
        eval_every: 0,
        lr: LrSchedule::Constant(0.05),
        minibatch: MinibatchPolicy::Fixed(6),
        scheduling: Scheduling::Aggregate,
        ..SplitConfig::default()
    }
}

#[test]
fn standard_protocol_leaks_labels_to_the_server() {
    // Two hospitals whose patients all share one diagnosis each.
    let shards = vec![single_class_shard(0, 12), single_class_shard(2, 12)];
    let test = SyntheticTabular::new(3, 6, 8).generate(30).unwrap();
    let transport = RecordingTransport::new(
        MemoryTransport::new(StarTopology::new(2)),
        MessageKind::LogitGrads,
    );
    let mut trainer = SplitTrainer::new(&arch(), config(3), shards, test, &transport).unwrap();
    let _ = trainer.run().unwrap();

    let captured = transport.captured();
    assert_eq!(
        captured.len(),
        2 * 3,
        "one gradient message per platform per round"
    );
    // The curious server recovers every label from the gradients alone:
    // batches alternate platform 0 (class 0) and platform 1 (class 2).
    for (i, grads) in captured.iter().enumerate() {
        let class = if i % 2 == 0 { 0 } else { 2 };
        let truth = vec![class; grads.dims()[0]];
        let rate = label_recovery_rate(grads, &truth).unwrap();
        assert_eq!(rate, 1.0, "message {i}: expected full label recovery, got {rate}");
    }
}

#[test]
fn u_shaped_variant_defeats_the_label_attack() {
    let shards = vec![single_class_shard(0, 12), single_class_shard(2, 12)];
    let test = SyntheticTabular::new(3, 6, 8).generate(30).unwrap();
    let transport = RecordingTransport::new(
        MemoryTransport::new(StarTopology::new(2)),
        MessageKind::FeatureGrads,
    );
    let mut trainer = UShapeTrainer::new(&arch(), config(3), 1, shards, test, &transport).unwrap();
    let _ = trainer.run().unwrap();

    let captured = transport.captured();
    assert_eq!(captured.len(), 2 * 3);
    // Feature gradients live in an 8-wide hidden space, not the 3-class
    // logit space: the argmin attack has nothing to grab onto. (Width
    // mismatch alone already defeats the column-reading attack; we also
    // verify that treating the first 3 columns as "logit" columns does not
    // recover the labels.)
    let mut hits = 0usize;
    let mut total = 0usize;
    for (i, grads) in captured.iter().enumerate() {
        assert_eq!(grads.dims()[1], 8, "feature grads live in hidden space");
        let class = if i % 2 == 0 { 0 } else { 2 };
        let cols3: Vec<f32> = grads
            .as_slice()
            .chunks(8)
            .flat_map(|row| row[..3].to_vec())
            .collect();
        let fake_logit_grads = Tensor::from_vec(cols3, [grads.dims()[0], 3]).unwrap();
        let truth = vec![class; grads.dims()[0]];
        hits += (label_recovery_rate(&fake_logit_grads, &truth).unwrap() * truth.len() as f32) as usize;
        total += truth.len();
    }
    let rate = hits as f32 / total as f32;
    assert!(
        rate < 0.8,
        "U-shaped gradients should not trivially reveal labels (rate {rate})"
    );
}

#[test]
fn recording_transport_is_transparent() {
    // The tap must not change what the protocol sees or counts.
    let shards = vec![single_class_shard(0, 12), single_class_shard(2, 12)];
    let test = SyntheticTabular::new(3, 6, 8).generate(30).unwrap();

    let plain = MemoryTransport::new(StarTopology::new(2));
    let mut t1 = SplitTrainer::new(&arch(), config(3), shards.clone(), test.clone(), &plain).unwrap();
    let h1 = t1.run().unwrap();

    let tapped = RecordingTransport::new(
        MemoryTransport::new(StarTopology::new(2)),
        MessageKind::Activations,
    );
    let mut t2 = SplitTrainer::new(&arch(), config(3), shards, test, &tapped).unwrap();
    let h2 = t2.run().unwrap();

    assert_eq!(h1.stats.total_bytes, h2.stats.total_bytes);
    assert!((h1.final_accuracy - h2.final_accuracy).abs() < 1e-6);
    assert_eq!(tapped.captured().len(), 6);
}
