//! Chaos injection and crash-recovery guarantees, end to end.
//!
//! Pins the fault-tolerance contract of PR 4: a seeded [`FaultPlan`]
//! replays bit-identically, corruption is always detected by the payload
//! checksum, duplicate/reordered delivery never changes converged
//! weights (exact equality, in the style of `tests/parallel_kernels.rs`),
//! and the acceptance scenario — 4 platforms under 10 % loss with one
//! mid-training crash+rejoin and one straggler — completes every round
//! within 5 accuracy points of the fault-free run.

use bytes::Bytes;
use medsplit::core::{Platform, ResilientTrainer, SplitConfig};
use medsplit::data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{
    ChaosSnapshot, ChaosTransport, Envelope, FaultPlan, MemoryTransport, MessageKind, NodeId, StarTopology,
    Transport,
};
use proptest::prelude::*;

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    })
}

fn data(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
    let train = SyntheticTabular::new(3, 8, 0).generate(240).unwrap();
    let test = SyntheticTabular::new(3, 8, 1).generate(60).unwrap();
    let shards = partition(&train, platforms, &Partition::Iid, 1).unwrap();
    (shards, test)
}

fn config(rounds: usize) -> SplitConfig {
    SplitConfig {
        rounds,
        eval_every: rounds,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(10),
        ..SplitConfig::default()
    }
}

/// Drives a fixed message sequence through a chaos transport and returns
/// every delivery (round, seq, checksum-valid) plus the fault counters.
fn chaos_trace(plan: &FaultPlan, messages: usize) -> (Vec<(u64, u64, bool)>, ChaosSnapshot) {
    let t = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), plan.clone());
    for i in 0..messages as u64 {
        let _ = t.begin_round(i / 8);
        let env = Envelope::new(
            NodeId::Platform(i as usize % 4),
            NodeId::Server,
            i / 8,
            MessageKind::Activations,
            Bytes::from(vec![(i % 251) as u8; 32]),
        );
        let _ = t.send(env);
    }
    t.flush();
    let mut delivered = Vec::new();
    while let Some(env) = t.try_recv(NodeId::Server) {
        delivered.push((env.round, env.seq, env.verify_checksum()));
    }
    (delivered, t.chaos_stats())
}

proptest! {
    /// A seeded fault plan is a pure function of its seed: any plan,
    /// driven by the same message sequence, replays bit-identically.
    #[test]
    fn fault_plan_replays_bit_identically(
        seed in 0u64..=u64::MAX,
        drop_p in 0.0f64..0.5,
        dup_p in 0.0f64..0.5,
        reorder_p in 0.0f64..0.5,
        corrupt_p in 0.0f64..0.5,
    ) {
        let plan = FaultPlan::new(seed)
            .with_drop(drop_p)
            .with_dup(dup_p)
            .with_reorder(reorder_p)
            .with_corrupt(corrupt_p)
            .crash(NodeId::Platform(3), 2)
            .recover(NodeId::Platform(3), 4);
        let a = chaos_trace(&plan, 64);
        let b = chaos_trace(&plan, 64);
        prop_assert_eq!(a, b);
    }

    /// Every corrupted delivery fails checksum verification — corruption
    /// is detected, never silently trained on.
    #[test]
    fn corruption_is_always_detected(seed in 0u64..=u64::MAX) {
        let plan = FaultPlan::new(seed).with_corrupt(1.0);
        let (delivered, stats) = chaos_trace(&plan, 32);
        prop_assert!(!delivered.is_empty());
        prop_assert!(delivered.iter().all(|(_, _, valid)| !valid));
        prop_assert_eq!(stats.corrupted, delivered.len() as u64);
    }

    /// Any single corrupted payload byte is caught by the checksum.
    #[test]
    fn checksum_catches_any_single_byte_flip(
        payload in prop::collection::vec(0u8..=255, 1..256),
        at in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut env = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            0,
            MessageKind::Activations,
            Bytes::from(payload.clone()),
        );
        prop_assert!(env.verify_checksum());
        let i = at % payload.len();
        let mut bytes = payload;
        bytes[i] ^= 1 << bit;
        env.payload = Bytes::from(bytes);
        prop_assert!(!env.verify_checksum());
    }
}

/// Runs resilient training under `plan` and returns the final `L1`
/// weights of every platform plus the bit pattern of the final accuracy.
fn converged_weights(plan: FaultPlan, rounds: usize) -> (Vec<medsplit::tensor::Tensor>, u32) {
    let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), plan);
    let (shards, test) = data(4);
    let mut trainer = ResilientTrainer::new(&arch(), config(rounds), shards, test, &chaos).unwrap();
    let history = trainer.run().unwrap();
    let weights = trainer
        .platforms_mut()
        .iter_mut()
        .map(Platform::l1_parameters)
        .collect();
    (weights, history.final_accuracy.to_bits())
}

#[test]
fn duplicates_and_reordering_never_change_converged_weights() {
    // Exact equality, as in tests/parallel_kernels.rs: dedup and
    // pid-keyed collection make delivery multiplicity and order
    // invisible to the learned parameters.
    let (clean_w, clean_acc) = converged_weights(FaultPlan::new(13), 15);
    let (noisy_w, noisy_acc) = converged_weights(FaultPlan::new(13).with_dup(0.4).with_reorder(0.4), 15);
    assert_eq!(clean_w, noisy_w, "weights must be bit-identical");
    assert_eq!(clean_acc, noisy_acc);
}

/// The PR's acceptance scenario: 4 platforms, 10 % drop, one
/// mid-training crash + rejoin, one straggler. All rounds complete,
/// accuracy lands within 5 points of fault-free, and the run replays
/// bit-identically.
#[test]
fn acceptance_four_platforms_loss_crash_straggler() {
    const ROUNDS: usize = 30;
    let plan = || {
        FaultPlan::new(2024)
            .with_drop(0.10)
            .crash(NodeId::Platform(1), 8)
            .recover(NodeId::Platform(1), 15)
            .straggler(NodeId::Platform(3), 0.5)
    };

    let run = |plan: FaultPlan| {
        let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), plan);
        let (shards, test) = data(4);
        let mut trainer = ResilientTrainer::new(&arch(), config(ROUNDS), shards, test, &chaos).unwrap();
        let history = trainer.run().unwrap();
        (history, trainer.report())
    };

    let (clean, _) = run(FaultPlan::new(2024));
    let (faulty, report) = run(plan());

    assert_eq!(faulty.records.len(), ROUNDS, "all rounds must complete");
    assert_eq!(report.crashes, 1);
    assert_eq!(report.rejoins, 1);
    assert!(report.retries > 0, "10% loss must exercise retries");
    // The crash window (rounds 8..15) is degraded; the rest may degrade
    // only if a platform ran out of retries, which the seed avoids.
    assert!(faulty.degraded_rounds() >= 7);
    assert!(
        faulty.final_accuracy >= clean.final_accuracy - 0.05,
        "faulty accuracy {} must be within 5 points of fault-free {}",
        faulty.final_accuracy,
        clean.final_accuracy
    );
    assert!(
        faulty.final_accuracy > 0.55,
        "the degraded run must still learn, got {}",
        faulty.final_accuracy
    );

    // Bit-identical replay of the full faulty training run.
    let (replay, replay_report) = run(plan());
    assert_eq!(report, replay_report);
    assert_eq!(faulty.stats, replay.stats);
    assert_eq!(faulty.final_accuracy.to_bits(), replay.final_accuracy.to_bits());
    for (a, b) in faulty.records.iter().zip(&replay.records) {
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        assert_eq!(a.cumulative_bytes, b.cumulative_bytes);
    }
}

/// Quorum boundary: with `min_platforms == num_platforms`, losing any
/// platform fails the round — the crash window becomes quorum failures
/// with zero participants and no update, and the run still completes.
#[test]
fn full_quorum_makes_any_loss_fail_the_round() {
    let plan = FaultPlan::new(91)
        .crash(NodeId::Platform(0), 3)
        .recover(NodeId::Platform(0), 6);
    let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), plan);
    let (shards, test) = data(4);
    let mut cfg = config(10);
    cfg.round_policy.min_platforms = 4;
    let mut trainer = ResilientTrainer::new(&arch(), cfg, shards, test, &chaos).unwrap();
    let history = trainer.run().unwrap();

    assert_eq!(history.records.len(), 10, "the run must complete every round");
    assert_eq!(
        trainer.report().quorum_failures,
        3,
        "rounds 3..6 miss full quorum"
    );
    for r in &history.records {
        if (3..6).contains(&r.round) {
            // The three survivors answered, but the round failed quorum:
            // their work is discarded and no update is applied.
            assert_eq!(r.participants, 3, "round {}", r.round);
            assert_eq!(r.mean_loss, 0.0, "failed round {} applies no update", r.round);
            assert!(r.degraded, "round {}", r.round);
        } else {
            assert_eq!(r.participants, 4, "round {}", r.round);
            assert!(!r.degraded, "round {}", r.round);
        }
    }
    assert!(history.final_accuracy.is_finite());
}

/// Quorum boundary: total message loss exhausts every platform's
/// retries every round. The whole run degrades gracefully — all rounds
/// are quorum failures, nothing panics, and evaluation still works.
#[test]
fn retries_exhausted_everywhere_degrades_gracefully() {
    let chaos = ChaosTransport::new(
        MemoryTransport::new(StarTopology::new(4)),
        FaultPlan::new(17).with_drop(1.0),
    );
    let (shards, test) = data(4);
    let mut trainer = ResilientTrainer::new(&arch(), config(5), shards, test, &chaos).unwrap();
    let history = trainer.run().unwrap();

    assert_eq!(history.records.len(), 5);
    assert_eq!(
        trainer.report().quorum_failures,
        5,
        "every round must fail quorum"
    );
    assert!(
        trainer.report().retries > 0,
        "the retry path must have been exercised"
    );
    assert!(history.records.iter().all(|r| r.participants == 0 && r.degraded));
    assert!(
        history.records.iter().all(|r| r.mean_loss == 0.0),
        "failed rounds report no loss"
    );
    // Weights never updated: accuracy equals the common-init model's.
    assert!(history.final_accuracy.is_finite());
    // Bytes were still charged for the doomed sends — loss is not free.
    assert!(history.stats.total_bytes > 0);
}

/// Crash–rejoin bookkeeping: the recovered platform resumes from its
/// checkpoint and contributes again; participants trace the crash window
/// exactly when no other faults interfere.
#[test]
fn crash_rejoin_restores_from_checkpoint() {
    let plan = FaultPlan::new(55)
        .crash(NodeId::Platform(2), 4)
        .recover(NodeId::Platform(2), 7);
    let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), plan);
    let (shards, test) = data(4);
    let mut trainer = ResilientTrainer::new(&arch(), config(12), shards, test, &chaos).unwrap();
    let history = trainer.run().unwrap();

    for r in &history.records {
        let expected = if (4..7).contains(&r.round) { 3 } else { 4 };
        assert_eq!(r.participants, expected, "round {}", r.round);
        assert_eq!(r.degraded, (4..7).contains(&r.round), "round {}", r.round);
    }
    assert_eq!(history.degraded_rounds(), 3);
    // The history CSV carries the new columns.
    let csv = history.to_csv();
    assert!(csv.starts_with("method,round,lr,loss,bytes,simulated_s,wall_s,participants,degraded,accuracy"));
    assert!(
        csv.lines().nth(5).unwrap().contains(",3,1,"),
        "crash round row: {csv}"
    );
}
