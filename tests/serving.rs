//! End-to-end serving over the thread-per-node runtime: request → local
//! `L1` → server `L2..Lk` → logits, plus the deadline-timeout and
//! queue-full rejection paths.

use medsplit::core::{build_split, Platform, SplitPoint, SplitServer, WireCodec};
use medsplit::data::SyntheticTabular;
use medsplit::nn::{Architecture, MlpConfig};
use medsplit::serve::{serve_threaded, InferStatus, ServeConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};
use medsplit::tensor::Tensor;

const FEATURES: usize = 8;
const CLASSES: usize = 3;

/// Builds `n` platforms (identical `L1`, private shards) and the server.
fn actors(n: usize, seed: u64) -> (Vec<Platform>, SplitServer) {
    let arch = Architecture::Mlp(MlpConfig::small(FEATURES, CLASSES));
    let model = build_split(&arch, SplitPoint::Default, seed, n).unwrap();
    let mut platforms = Vec::with_capacity(n);
    for (id, client) in model.clients.into_iter().enumerate() {
        let data = SyntheticTabular::new(CLASSES, FEATURES, seed ^ id as u64)
            .generate(16)
            .unwrap();
        platforms.push(Platform::new(id, client, data, 4, 0.0, seed));
    }
    (platforms, SplitServer::new(model.server, 0.0))
}

/// `count` single-row queries for one platform.
fn queries(count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = medsplit::tensor::init::rng_from_seed(seed);
    (0..count)
        .map(|_| Tensor::rand_uniform([1, FEATURES], -1.0, 1.0, &mut rng))
        .collect()
}

#[test]
fn end_to_end_logits_over_threaded_runtime() {
    let n_platforms = 2;
    let per_platform = 12;
    let (platforms, server) = actors(n_platforms, 11);
    let topology = StarTopology::new(n_platforms);
    let transport = MemoryTransport::new(topology.clone());
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_s: 0.02,
        offered_rps: 200.0,
        ..ServeConfig::default()
    };
    let qs: Vec<Vec<Tensor>> = (0..n_platforms)
        .map(|p| queries(per_platform, p as u64))
        .collect();

    let outcome = serve_threaded(platforms, server, qs, &topology, &cfg, &transport).unwrap();

    let report = &outcome.report;
    assert_eq!(report.offered, n_platforms * per_platform);
    assert_eq!(
        report.completed, report.offered,
        "ample capacity: everything completes"
    );
    assert_eq!(report.rejected, 0);
    assert_eq!(report.timed_out, 0);
    assert_eq!(outcome.records.len(), report.offered);
    for rec in &outcome.records {
        assert_eq!(rec.status, InferStatus::Ok);
        let logits = rec.logits.as_ref().expect("completed requests carry logits");
        assert_eq!(logits.dims(), &[1, CLASSES]);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        assert!(rec.latency_s > 0.0, "wire + compute time must be positive");
    }
    // Latency accounting is populated and ordered.
    let lat = report.latency.as_ref().unwrap();
    assert_eq!(lat.count, report.offered);
    assert!(lat.p50_s <= lat.p95_s && lat.p95_s <= lat.p99_s && lat.p99_s <= lat.max_s);
    // Serving traffic is accounted under its own message kinds.
    assert!(report.request_bytes > 0);
    assert!(report.response_bytes > 0);
    assert!(report.makespan_s > 0.0);
}

#[test]
fn serving_logits_match_direct_inference() {
    // The served logits must equal composing infer_l1 + infer directly
    // (noise off, F32): serving is a transport, not a different model.
    let (mut platforms, mut server) = actors(1, 5);
    let q = queries(3, 42);
    let mut direct = Vec::new();
    for x in &q {
        let acts = platforms[0].infer_l1(x).unwrap();
        direct.push(server.infer(&acts).unwrap());
    }

    let (platforms, server) = actors(1, 5);
    let topology = StarTopology::new(1);
    let transport = MemoryTransport::new(topology.clone());
    let cfg = ServeConfig {
        codec: WireCodec::F32,
        ..ServeConfig::default()
    };
    let outcome = serve_threaded(platforms, server, vec![q], &topology, &cfg, &transport).unwrap();

    assert_eq!(outcome.records.len(), 3);
    for (rec, want) in outcome.records.iter().zip(&direct) {
        let got = rec.logits.as_ref().unwrap();
        assert!(
            got.allclose(want, 1e-6),
            "served logits diverge from direct inference"
        );
    }
}

#[test]
fn deadline_timeouts_are_reported() {
    // A zero relative deadline cannot survive the WAN uplink latency, so
    // every admitted request times out — and still gets a response.
    let (platforms, server) = actors(1, 7);
    let topology = StarTopology::new(1);
    let transport = MemoryTransport::new(topology.clone());
    let cfg = ServeConfig {
        deadline_s: 0.0,
        max_batch: 4,
        max_wait_s: 0.01,
        ..ServeConfig::default()
    };
    let outcome = serve_threaded(
        platforms,
        server,
        vec![queries(6, 1)],
        &topology,
        &cfg,
        &transport,
    )
    .unwrap();

    assert_eq!(outcome.report.offered, 6);
    assert_eq!(outcome.report.timed_out, 6, "every request must time out");
    assert_eq!(outcome.report.completed, 0);
    assert!(
        outcome.report.latency.is_none(),
        "no completions, no latency samples"
    );
    for rec in &outcome.records {
        assert_eq!(rec.status, InferStatus::TimedOut);
        assert!(rec.logits.is_none());
        assert!(rec.latency_s > 0.0, "timeout responses still take wire time");
    }
    // Timeout responses are small but still accounted.
    assert!(outcome.report.response_bytes > 0);
}

#[test]
fn queue_full_requests_are_rejected_not_dropped() {
    // Capacity 4 with an infinite flush timer and a size threshold above
    // capacity: the first 4 requests sit in the queue, every later one is
    // rejected, and the queued 4 are served at the shutdown drain. This
    // is deterministic regardless of thread scheduling because nothing
    // can flush while requests keep arriving.
    let total = 10;
    let (platforms, server) = actors(1, 3);
    let topology = StarTopology::new(1);
    let transport = MemoryTransport::new(topology.clone());
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_s: f64::INFINITY,
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let outcome = serve_threaded(
        platforms,
        server,
        vec![queries(total, 2)],
        &topology,
        &cfg,
        &transport,
    )
    .unwrap();

    assert_eq!(outcome.report.offered, total);
    assert_eq!(outcome.report.completed, 4, "queue capacity bounds completions");
    assert_eq!(outcome.report.rejected, total - 4);
    assert_eq!(
        outcome.records.len(),
        total,
        "every request has a terminal record"
    );
    // The first four submissions (by id order) were admitted.
    for rec in &outcome.records {
        let expected = if rec.id < 4 {
            InferStatus::Ok
        } else {
            InferStatus::Rejected
        };
        assert_eq!(rec.status, expected, "request {}", rec.id);
    }
}

#[test]
fn f16_codec_shrinks_serving_traffic() {
    let run = |codec: WireCodec| {
        let (platforms, server) = actors(1, 9);
        let topology = StarTopology::new(1);
        let transport = MemoryTransport::new(topology.clone());
        let cfg = ServeConfig {
            codec,
            ..ServeConfig::default()
        };
        serve_threaded(
            platforms,
            server,
            vec![queries(8, 4)],
            &topology,
            &cfg,
            &transport,
        )
        .unwrap()
    };
    let f32_run = run(WireCodec::F32);
    let f16_run = run(WireCodec::F16);
    assert_eq!(f16_run.report.completed, 8);
    assert!(
        f16_run.report.request_bytes < f32_run.report.request_bytes,
        "f16 must shrink uplink serving traffic"
    );
    assert!(
        f16_run.report.response_bytes < f32_run.report.response_bytes,
        "f16 must shrink downlink serving traffic"
    );
}
