//! Cross-crate accounting invariants: what each protocol puts on the wire
//! matches the analytic formulas byte-for-byte, and the privacy
//! invariants hold.

use medsplit::baselines::{train_fedavg, train_sync_sgd, BaselineConfig, FedAvgOptions, SyncSgdOptions};
use medsplit::core::{comm, SplitConfig, SplitTrainer};
use medsplit::data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{MemoryTransport, MessageKind, StarTopology};

const PLATFORMS: usize = 3;
const ROUNDS: usize = 7;
const BATCH: usize = 5;

fn setup() -> (Architecture, Vec<InMemoryDataset>, InMemoryDataset) {
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 6,
        hidden: vec![12],
        num_classes: 3,
    });
    let all = SyntheticTabular::new(3, 6, 0).generate(120).unwrap();
    let train = all.subset(&(0..90).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(90..120).collect::<Vec<_>>()).unwrap();
    let shards = partition(&train, PLATFORMS, &Partition::Iid, 1).unwrap();
    (arch, shards, test)
}

fn base_config() -> BaselineConfig {
    BaselineConfig {
        rounds: ROUNDS,
        eval_every: 0,
        lr: LrSchedule::Constant(0.05),
        minibatch: MinibatchPolicy::Fixed(BATCH),
        ..Default::default()
    }
}

#[test]
fn split_bytes_match_analytic_formula_exactly() {
    let (arch, shards, test) = setup();
    let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
    let config = SplitConfig {
        rounds: ROUNDS,
        eval_every: 0,
        minibatch: MinibatchPolicy::Fixed(BATCH),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport).unwrap();
    let history = trainer.run().unwrap();
    // L1 output width is 12 (first hidden layer), 3 classes.
    let expected = ROUNDS as u64 * comm::split_round_bytes(&[BATCH; PLATFORMS], &[12], 3);
    assert_eq!(history.stats.total_bytes, expected);
}

#[test]
fn fedavg_bytes_match_analytic_formula_exactly() {
    let (arch, shards, test) = setup();
    let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
    let history = train_fedavg(
        &arch,
        &base_config(),
        FedAvgOptions { local_steps: 3 },
        shards,
        &test,
        &transport,
    )
    .unwrap();
    // MLPs carry no batch-norm state, so the snapshot is the parameters.
    let expected = ROUNDS as u64 * comm::fedavg_round_bytes(PLATFORMS, arch.param_count());
    assert_eq!(history.stats.total_bytes, expected);
}

#[test]
fn sync_sgd_bytes_match_analytic_formula_exactly() {
    let (arch, shards, test) = setup();
    let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
    let history = train_sync_sgd(
        &arch,
        &base_config(),
        SyncSgdOptions::default(),
        shards,
        &test,
        &transport,
    )
    .unwrap();
    let expected = ROUNDS as u64 * comm::sync_sgd_round_bytes(PLATFORMS, arch.param_count());
    assert_eq!(history.stats.total_bytes, expected);
}

#[test]
fn split_uplink_downlink_partition_the_total() {
    let (arch, shards, test) = setup();
    let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
    let config = SplitConfig {
        rounds: ROUNDS,
        eval_every: 0,
        minibatch: MinibatchPolicy::Fixed(BATCH),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport).unwrap();
    let history = trainer.run().unwrap();
    let s = &history.stats;
    assert_eq!(s.uplink_bytes + s.downlink_bytes, s.total_bytes);
    // The four message kinds partition the traffic too.
    let by_kind: u64 = [
        MessageKind::Activations,
        MessageKind::Logits,
        MessageKind::LogitGrads,
        MessageKind::CutGrads,
    ]
    .iter()
    .map(|k| s.bytes_of(*k))
    .sum();
    assert_eq!(by_kind, s.total_bytes);
    // Activations and cut gradients are the same tensor shape.
    assert_eq!(
        s.bytes_of(MessageKind::Activations),
        s.bytes_of(MessageKind::CutGrads)
    );
    assert_eq!(
        s.bytes_of(MessageKind::Logits),
        s.bytes_of(MessageKind::LogitGrads)
    );
}

#[test]
fn no_protocol_ever_ships_raw_data_except_centralized() {
    let (arch, shards, test) = setup();
    // Split.
    {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let config = SplitConfig {
            rounds: 2,
            eval_every: 0,
            ..SplitConfig::default()
        };
        let mut trainer = SplitTrainer::new(&arch, config, shards.clone(), test.clone(), &transport).unwrap();
        let h = trainer.run().unwrap();
        assert_eq!(h.stats.bytes_of(MessageKind::RawData), 0);
    }
    // FedAvg and sync-SGD.
    {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let mut cfg = base_config();
        cfg.rounds = 2;
        let h = train_fedavg(
            &arch,
            &cfg,
            FedAvgOptions::default(),
            shards.clone(),
            &test,
            &transport,
        )
        .unwrap();
        assert_eq!(h.stats.bytes_of(MessageKind::RawData), 0);
        let transport2 = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let h2 = train_sync_sgd(
            &arch,
            &cfg,
            SyncSgdOptions::default(),
            shards.clone(),
            &test,
            &transport2,
        )
        .unwrap();
        assert_eq!(h2.stats.bytes_of(MessageKind::RawData), 0);
    }
    // Centralized is the one method that does.
    {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let mut cfg = base_config();
        cfg.rounds = 2;
        let h = medsplit::baselines::train_centralized(&arch, &cfg, &shards, &test, &transport).unwrap();
        assert!(h.stats.bytes_of(MessageKind::RawData) > 0);
    }
}

#[test]
fn split_traffic_is_independent_of_model_depth() {
    // Adding hidden layers on the server side must not change split
    // traffic at all — the defining property of the protocol.
    let (_, shards, test) = setup();
    let shallow = Architecture::Mlp(MlpConfig {
        input_dim: 6,
        hidden: vec![12],
        num_classes: 3,
    });
    let deep = Architecture::Mlp(MlpConfig {
        input_dim: 6,
        hidden: vec![12, 64, 64, 64],
        num_classes: 3,
    });
    let mut totals = Vec::new();
    for arch in [&shallow, &deep] {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let config = SplitConfig {
            rounds: 3,
            eval_every: 0,
            minibatch: MinibatchPolicy::Fixed(BATCH),
            ..SplitConfig::default()
        };
        let mut trainer = SplitTrainer::new(arch, config, shards.clone(), test.clone(), &transport).unwrap();
        totals.push(trainer.run().unwrap().stats.total_bytes);
    }
    assert_eq!(totals[0], totals[1], "depth changed split traffic");
    // While model-exchange traffic grows with depth:
    assert!(
        comm::fedavg_round_bytes(PLATFORMS, deep.param_count())
            > comm::fedavg_round_bytes(PLATFORMS, shallow.param_count())
    );
}
