//! End-to-end privacy properties of the deployed protocol: what the
//! transmitted representation reveals, and how the cut depth trades
//! communication against leakage.

use medsplit::core::{SplitConfig, SplitPoint, SplitTrainer};
use medsplit::data::{partition, Partition, SyntheticImages};
use medsplit::nn::{Architecture, LrSchedule, VggConfig};
use medsplit::privacy::{assess_l1_leakage, distance_correlation, flatten_samples};
use medsplit::simnet::{MemoryTransport, StarTopology};

fn workload() -> (
    Architecture,
    Vec<medsplit::data::InMemoryDataset>,
    medsplit::data::InMemoryDataset,
) {
    let gen = SyntheticImages::lite(4, 11);
    let (train, test) = gen.generate_split(160, 80).unwrap();
    let shards = partition(&train, 2, &Partition::Iid, 1).unwrap();
    (Architecture::Vgg(VggConfig::lite(4)), shards, test)
}

fn train_at_cut(cut: SplitPoint, rounds: usize) -> (f64, f32, u64) {
    let (arch, shards, test) = workload();
    let transport = MemoryTransport::new(StarTopology::new(2));
    let config = SplitConfig {
        split: cut,
        rounds,
        eval_every: 0,
        lr: LrSchedule::Constant(0.05),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test.clone(), &transport).unwrap();
    let history = trainer.run().unwrap();
    let idx: Vec<usize> = (0..64).collect();
    let (inputs, _) = test.batch(&idx).unwrap();
    let report = assess_l1_leakage(trainer.platforms_mut()[0].model_mut(), &inputs, 1e-2).unwrap();
    (
        report.dcor,
        report.reconstruction.r_squared,
        history.stats.total_bytes,
    )
}

#[test]
fn deeper_cuts_transmit_less_and_leak_less() {
    // Cut 3: after the first conv block (paper default, index 3 with BN).
    // Cut 8: after the second pooling stage — 4x smaller activations.
    let (dcor_shallow, r2_shallow, bytes_shallow) = train_at_cut(SplitPoint::At(3), 6);
    let (dcor_deep, r2_deep, bytes_deep) = train_at_cut(SplitPoint::At(8), 6);
    assert!(
        bytes_deep < bytes_shallow,
        "deeper cut must transmit less: {bytes_deep} vs {bytes_shallow}"
    );
    assert!(
        dcor_deep < dcor_shallow,
        "deeper cut must reduce distance correlation: {dcor_deep} vs {dcor_shallow}"
    );
    assert!(
        r2_deep <= r2_shallow + 0.05,
        "deeper cut must not leak more: {r2_deep} vs {r2_shallow}"
    );
}

#[test]
fn transmitted_activations_are_not_the_raw_images() {
    let (arch, shards, test) = workload();
    let transport = MemoryTransport::new(StarTopology::new(2));
    let config = SplitConfig {
        rounds: 4,
        eval_every: 0,
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test.clone(), &transport).unwrap();
    let _ = trainer.run().unwrap();

    let idx: Vec<usize> = (0..40).collect();
    let (inputs, _) = test.batch(&idx).unwrap();
    let acts = trainer.platforms_mut()[0].infer_l1(&inputs).unwrap();
    // The representation is genuinely transformed: not a copy, and the
    // dependence is strictly below identity.
    assert_ne!(acts.shape(), inputs.shape());
    let d = distance_correlation(
        &flatten_samples(&inputs).unwrap(),
        &flatten_samples(&acts).unwrap(),
    )
    .unwrap();
    assert!(d < 0.999, "activations must not be a trivial copy (dcor {d})");
    assert!(d > 0.05, "activations should retain task information (dcor {d})");
}

#[test]
fn labels_never_leave_the_platform() {
    // Structural check: the platform's outbound messages are activations
    // and logit gradients only; batch labels exist nowhere in the payload
    // sizes. (Labels would add `batch` extra scalars to some message.)
    let (arch, shards, test) = workload();
    let transport = MemoryTransport::new(StarTopology::new(2));
    let config = SplitConfig {
        rounds: 1,
        eval_every: 0,
        minibatch: medsplit::data::MinibatchPolicy::Fixed(8),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport).unwrap();
    let h = trainer.run().unwrap();
    use medsplit::simnet::MessageKind;
    use medsplit::tensor::{serialized_len, Shape};
    // Exactly batch x classes floats per logits/grads message: no room for labels.
    let logits_bytes = h.stats.bytes_of(MessageKind::LogitGrads);
    let expected = 2 * (serialized_len(&Shape::from([8usize, 4])) + medsplit::simnet::HEADER_BYTES) as u64;
    assert_eq!(logits_bytes, expected);
}
