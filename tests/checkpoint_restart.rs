//! Failure recovery: the server (or a platform) crashes mid-training and
//! resumes from a checkpoint.

use medsplit::core::{SplitConfig, SplitTrainer};
use medsplit::data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};

fn setup() -> (
    Architecture,
    Vec<medsplit::data::InMemoryDataset>,
    medsplit::data::InMemoryDataset,
) {
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    });
    let mut gen = SyntheticTabular::new(3, 8, 6);
    gen.separation = 0.8;
    let all = gen.generate(200).unwrap();
    let train = all.subset(&(0..160).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(160..200).collect::<Vec<_>>()).unwrap();
    let shards = partition(&train, 2, &Partition::Iid, 1).unwrap();
    (arch, shards, test)
}

fn config(rounds: usize) -> SplitConfig {
    SplitConfig {
        rounds,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        momentum: 0.0, // parameter-only checkpoints are exact without momentum
        ..SplitConfig::default()
    }
}

#[test]
fn checkpoint_roundtrip_preserves_the_model_exactly() {
    let (arch, shards, test) = setup();
    let transport = MemoryTransport::new(StarTopology::new(2));
    let mut trainer = SplitTrainer::new(&arch, config(10), shards, test.clone(), &transport).unwrap();
    let _ = trainer.run().unwrap();
    let acc_before = trainer.evaluate().unwrap();

    // Checkpoint everything.
    let server_ckpt = trainer.server_mut().checkpoint();
    let platform_ckpts: Vec<_> = trainer
        .platforms_mut()
        .iter_mut()
        .map(|p| p.checkpoint())
        .collect();

    // "Crash": clobber the models with garbage.
    let n_server = medsplit::nn::vectorize::snapshot_vector(trainer.server_mut().model_mut()).numel();
    medsplit::nn::vectorize::load_snapshot_vector(
        trainer.server_mut().model_mut(),
        &medsplit::tensor::Tensor::zeros([n_server]),
    )
    .unwrap();
    let acc_crashed = trainer.evaluate().unwrap();
    assert!(
        acc_crashed < acc_before,
        "clobbering should hurt: {acc_crashed} vs {acc_before}"
    );

    // Restore and verify bit-exact recovery.
    trainer.server_mut().restore(&server_ckpt).unwrap();
    for (p, ckpt) in trainer.platforms_mut().iter_mut().zip(&platform_ckpts) {
        p.restore(ckpt).unwrap();
    }
    let acc_restored = trainer.evaluate().unwrap();
    assert_eq!(acc_restored, acc_before, "restore must be exact");
}

#[test]
fn restored_server_continues_training() {
    let (arch, shards, test) = setup();

    // Phase 1: train, checkpoint.
    let t1 = MemoryTransport::new(StarTopology::new(2));
    let mut trainer1 = SplitTrainer::new(&arch, config(30), shards.clone(), test.clone(), &t1).unwrap();
    let h1 = trainer1.run().unwrap();
    let server_ckpt = trainer1.server_mut().checkpoint();
    let platform_ckpts: Vec<_> = trainer1
        .platforms_mut()
        .iter_mut()
        .map(|p| p.checkpoint())
        .collect();

    // Phase 2: a brand-new trainer (fresh random init), restored from the
    // checkpoints, must start from — and improve on — the phase-1 model.
    let t2 = MemoryTransport::new(StarTopology::new(2));
    let mut cfg2 = config(30);
    cfg2.seed = 999; // different init; only the checkpoint carries state over
    let mut trainer2 = SplitTrainer::new(&arch, cfg2, shards, test, &t2).unwrap();
    trainer2.server_mut().restore(&server_ckpt).unwrap();
    for (p, ckpt) in trainer2.platforms_mut().iter_mut().zip(&platform_ckpts) {
        p.restore(ckpt).unwrap();
    }
    let resumed_start = trainer2.evaluate().unwrap();
    assert!(
        (resumed_start - h1.final_accuracy).abs() < 1e-6,
        "restored model must match the checkpointed one: {resumed_start} vs {}",
        h1.final_accuracy
    );
    let h2 = trainer2.run().unwrap();
    assert!(
        h2.final_accuracy >= resumed_start - 0.05,
        "continued training regressed: {} -> {}",
        resumed_start,
        h2.final_accuracy
    );
}

#[test]
fn corrupt_checkpoint_is_rejected() {
    let (arch, shards, test) = setup();
    let transport = MemoryTransport::new(StarTopology::new(2));
    let mut trainer = SplitTrainer::new(&arch, config(1), shards, test, &transport).unwrap();
    let mut blob = trainer.server_mut().checkpoint().to_vec();
    blob.truncate(blob.len() / 2);
    assert!(trainer.server_mut().restore(&bytes::Bytes::from(blob)).is_err());
    // Wrong-architecture checkpoint also rejected.
    let platform_ckpt = trainer.platforms_mut()[0].checkpoint();
    assert!(trainer.server_mut().restore(&platform_ckpt).is_err());
}
