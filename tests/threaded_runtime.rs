//! The thread-per-node runtime against the deterministic driver, across
//! crates and on a convolutional model.

use medsplit::core::threaded::train_threaded;
use medsplit::core::{SplitConfig, SplitTrainer};
use medsplit::data::{partition, MinibatchPolicy, Partition, SyntheticImages};
use medsplit::nn::{Architecture, LrSchedule, VggConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};

fn config(rounds: usize) -> SplitConfig {
    SplitConfig {
        rounds,
        eval_every: 0,
        lr: LrSchedule::Constant(0.05),
        minibatch: MinibatchPolicy::Fixed(6),
        ..SplitConfig::default()
    }
}

#[test]
fn threaded_and_sequential_agree_on_a_conv_model() {
    let gen = SyntheticImages::lite(3, 21);
    let (train, test) = gen.generate_split(90, 30).unwrap();
    let shards = partition(&train, 3, &Partition::Iid, 2).unwrap();
    let arch = Architecture::Vgg(VggConfig::lite(3));

    let t1 = MemoryTransport::new(StarTopology::new(3));
    let threaded = train_threaded(&arch, config(6), shards.clone(), test.clone(), &t1).unwrap();

    let t2 = MemoryTransport::new(StarTopology::new(3));
    let mut seq = SplitTrainer::new(&arch, config(6), shards, test, &t2).unwrap();
    let sequential = seq.run().unwrap();

    // Identical bytes, messages, and learned function.
    assert_eq!(threaded.stats.total_bytes, sequential.stats.total_bytes);
    assert_eq!(threaded.stats.messages, sequential.stats.messages);
    assert!(
        (threaded.final_accuracy - sequential.final_accuracy).abs() < 1e-6,
        "threaded {} vs sequential {}",
        threaded.final_accuracy,
        sequential.final_accuracy
    );
    for (a, b) in threaded.records.iter().zip(&sequential.records) {
        assert!(
            (a.mean_loss - b.mean_loss).abs() < 1e-6,
            "round {} losses differ",
            a.round
        );
    }
}

#[test]
fn threaded_runtime_scales_to_many_platforms() {
    let gen = SyntheticImages::lite(3, 22);
    let (train, test) = gen.generate_split(160, 40).unwrap();
    let shards = partition(&train, 8, &Partition::Iid, 3).unwrap();
    let arch = Architecture::Vgg(VggConfig::lite(3));
    let transport = MemoryTransport::new(StarTopology::new(8));
    let history = train_threaded(&arch, config(3), shards, test, &transport).unwrap();
    // 8 platforms × 4 messages × 3 rounds.
    assert_eq!(history.stats.messages, 8 * 4 * 3);
    assert!(history.final_accuracy.is_finite());
}
