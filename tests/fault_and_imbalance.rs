//! Failure injection and the data-imbalance story, end to end.

use medsplit::baselines::{train_local_only, train_sync_sgd, BaselineConfig, SyncSgdOptions};
use medsplit::core::{SplitConfig, SplitTrainer};
use medsplit::data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{FaultKind, FaultyTransport, MemoryTransport, NodeId, StarTopology};

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    })
}

fn data(seed: u64) -> (InMemoryDataset, InMemoryDataset) {
    let all = SyntheticTabular::new(3, 8, seed).generate(250).unwrap();
    let train = all.subset(&(0..200).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(200..250).collect::<Vec<_>>()).unwrap();
    (train, test)
}

#[test]
fn sync_sgd_with_backups_survives_dead_and_slow_platforms() {
    let (train, test) = data(0);
    let shards = partition(&train, 4, &Partition::Iid, 1).unwrap();
    let transport = FaultyTransport::new(MemoryTransport::new(StarTopology::new(4)));
    transport.set_fault(NodeId::Platform(1), FaultKind::Dead);
    transport.set_fault(NodeId::Platform(3), FaultKind::Slow(5.0));
    let config = BaselineConfig {
        rounds: 30,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        ..Default::default()
    };
    let history = train_sync_sgd(
        &arch(),
        &config,
        SyncSgdOptions { backup_workers: 1 },
        shards,
        &test,
        &transport,
    )
    .unwrap();
    assert!(
        history.final_accuracy > 0.6,
        "accuracy {}",
        history.final_accuracy
    );
    // The straggler's per-message penalty shows up in the simulated clock.
    assert!(
        history.stats.makespan_s >= 5.0,
        "makespan {}",
        history.stats.makespan_s
    );
}

#[test]
fn split_training_tolerates_a_straggler_in_time_but_not_in_bytes() {
    let (train, test) = data(1);
    let shards = partition(&train, 3, &Partition::Iid, 2).unwrap();

    let run = |slow: Option<f64>| {
        let transport = FaultyTransport::new(MemoryTransport::new(StarTopology::new(3)));
        if let Some(penalty) = slow {
            transport.set_fault(NodeId::Platform(2), FaultKind::Slow(penalty));
        }
        let config = SplitConfig {
            rounds: 10,
            eval_every: 0,
            minibatch: MinibatchPolicy::Fixed(8),
            ..SplitConfig::default()
        };
        let mut trainer =
            SplitTrainer::new(&arch(), config, shards.clone(), test.clone(), &transport).unwrap();
        trainer.run().unwrap()
    };
    let normal = run(None);
    let straggled = run(Some(2.0));
    // Same bytes (the protocol is synchronous and loses nothing)...
    assert_eq!(normal.stats.total_bytes, straggled.stats.total_bytes);
    // ...but the straggler inflates simulated time.
    assert!(straggled.stats.makespan_s > normal.stats.makespan_s + 1.0);
    // And the learned model quality is unaffected.
    assert!((normal.final_accuracy - straggled.final_accuracy).abs() < 1e-6);
}

#[test]
fn proportional_minibatch_mitigates_power_law_imbalance() {
    let (train, test) = data(2);
    let shards = partition(&train, 4, &Partition::PowerLaw { alpha: 2.0 }, 3).unwrap();
    let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
    assert!(sizes[0] > 4 * sizes[3], "expected heavy skew: {sizes:?}");

    let run = |policy: MinibatchPolicy| {
        let transport = MemoryTransport::new(StarTopology::new(4));
        let config = SplitConfig {
            rounds: 60,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            minibatch: policy,
            ..SplitConfig::default()
        };
        let mut trainer =
            SplitTrainer::new(&arch(), config, shards.clone(), test.clone(), &transport).unwrap();
        trainer.run().unwrap().final_accuracy
    };
    let proportional = run(MinibatchPolicy::Proportional { global: 32 });
    let fixed = run(MinibatchPolicy::Fixed(8));
    // Proportional sampling must not be worse; under skew it corrects the
    // oversampling of tiny shards. (Both learn; the gap can be small on an
    // easy task, so assert non-inferiority plus learning.)
    assert!(proportional > 0.7, "proportional accuracy {proportional}");
    assert!(
        proportional + 0.05 >= fixed,
        "proportional {proportional} vs fixed {fixed}"
    );
}

#[test]
fn split_beats_local_only_under_label_skew() {
    let (train, test) = data(3);
    let shards = partition(&train, 4, &Partition::Dirichlet { alpha: 0.1 }, 4).unwrap();

    let transport = MemoryTransport::new(StarTopology::new(4));
    let config = SplitConfig {
        rounds: 60,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Proportional { global: 32 },
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch(), config, shards.clone(), test.clone(), &transport).unwrap();
    let split_acc = trainer.run().unwrap().final_accuracy;

    let bconfig = BaselineConfig {
        rounds: 60,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Proportional { global: 32 },
        ..Default::default()
    };
    let (local_history, per_platform) = train_local_only(&arch(), &bconfig, &shards, &test).unwrap();

    // The paper's motivation: local-only models overfit their skewed
    // shards; the split model sees the union through the server.
    assert!(
        split_acc > local_history.final_accuracy + 0.1,
        "split {split_acc} vs local mean {}",
        local_history.final_accuracy
    );
    // Every single local model is worse than the split model.
    for (i, acc) in per_platform.iter().enumerate() {
        assert!(
            split_acc > *acc,
            "platform {i} local model ({acc}) beat split ({split_acc})"
        );
    }
}
