//! Fleet chaos acceptance: the headline guarantee of the sharded serving
//! tier. A 4-replica fleet under load loses one replica mid-run; its
//! in-flight requests re-route to ring successors, the replica rejoins
//! and takes its session shard back, and **no admitted request is
//! dropped** — every offered request gets exactly one terminal answer
//! (deadline timeouts are allowed, answered, and counted). Completed
//! logits stay bit-identical to a fault-free single-replica run, because
//! activations, version pins and weights never depend on fleet size or
//! on the fault schedule.

use std::collections::HashMap;

use medsplit::fleet::{run_fleet, FleetAction, FleetConfig, FleetEvent, FleetOutcome, ReplicaPhase};
use medsplit::serve::InferStatus;
use medsplit::simnet::FaultPlan;

const SEED: u64 = 42;
const PER_TENANT: usize = 60;

fn cfg(replicas: usize) -> FleetConfig {
    FleetConfig {
        replicas,
        tenants: 3,
        sessions_per_tenant: 4,
        tenant_quota: 64,
        weight_versions: 2,
        ..FleetConfig::default()
    }
}

fn assert_no_drop(out: &FleetOutcome, offered: usize) {
    assert_eq!(out.report.offered, offered);
    assert_eq!(
        out.records.len(),
        offered,
        "every offered request needs exactly one terminal record"
    );
    let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
    ids.dedup();
    assert_eq!(ids.len(), offered, "records must cover distinct ids");
    assert_eq!(
        out.report.completed + out.report.rejected + out.report.timed_out + out.report.throttled,
        offered,
        "terminal statuses must account for every request: {:?}",
        out.report
    );
}

/// The acceptance scenario from the issue: crash replica 2 at 0.2 s
/// under open-loop load, recover it at 0.4 s.
#[test]
fn four_replica_fleet_survives_crash_and_rejoin_without_drops() {
    let cfg = cfg(4);
    let crash_tick = (0.2 / cfg.chaos_tick_s) as u64;
    let recover_tick = (0.4 / cfg.chaos_tick_s) as u64;
    let plan = FaultPlan::new(SEED)
        .crash_replica(2, crash_tick)
        .recover_replica(2, recover_tick);
    let out = run_fleet(&cfg, PER_TENANT, SEED, plan, &[]).unwrap();

    let offered = 3 * PER_TENANT;
    assert_no_drop(&out, offered);

    // The crash actually bit: traffic kept flowing, and by the end the
    // victim is back in service.
    assert!(
        out.report.completed > 0,
        "fleet must keep serving: {:?}",
        out.report
    );
    assert_eq!(out.per_replica[2].final_phase, ReplicaPhase::Active);
    let survivors: u64 = out
        .per_replica
        .iter()
        .filter(|r| r.replica != 2)
        .map(|r| r.served)
        .sum();
    assert!(survivors > 0, "ring successors must absorb the victim's load");

    // Completed logits are bit-identical to a fault-free single-replica
    // run — the fault schedule may change *which* requests complete,
    // never *what* a completed request computes.
    let solo = FleetConfig {
        replicas: 1,
        ..cfg.clone()
    };
    let baseline = run_fleet(&solo, PER_TENANT, SEED, FaultPlan::new(1), &[]).unwrap();
    assert_eq!(baseline.report.completed, offered);
    let reference: HashMap<u64, Vec<u32>> = baseline
        .records
        .iter()
        .filter_map(|r| {
            r.logits
                .as_ref()
                .map(|l| (r.id, l.as_slice().iter().map(|v| v.to_bits()).collect()))
        })
        .collect();
    let mut compared = 0;
    for rec in &out.records {
        if rec.status != InferStatus::Ok {
            continue;
        }
        let got: Vec<u32> = rec
            .logits
            .as_ref()
            .expect("completed records carry logits")
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(&got, &reference[&rec.id], "logits diverged for id {}", rec.id);
        compared += 1;
    }
    assert!(compared > 0);
}

/// Graceful drain: an operator drains replica 1 mid-load (sessions hand
/// off to ring successors), then rejoins it. A *graceful* drain must not
/// even throttle — every request completes or times out.
#[test]
fn graceful_drain_hands_off_and_rejoins() {
    let cfg = cfg(4);
    let events = [
        FleetEvent {
            at_s: 0.15,
            replica: 1,
            action: FleetAction::Drain,
        },
        FleetEvent {
            at_s: 0.40,
            replica: 1,
            action: FleetAction::Rejoin,
        },
    ];
    let out = run_fleet(&cfg, PER_TENANT, SEED, FaultPlan::new(3), &events).unwrap();

    let offered = 3 * PER_TENANT;
    assert_no_drop(&out, offered);
    assert_eq!(
        out.report.completed + out.report.timed_out,
        offered,
        "graceful drain must not reject or throttle: {:?}",
        out.report
    );
    assert!(out.handoffs > 0, "drain must hand sessions to successors");
    assert_eq!(out.per_replica[1].final_phase, ReplicaPhase::Active);
    // After rejoin the replica pulled its homed sessions back and serves
    // again; session state survived the round trip. (Requests in flight
    // to a successor when the rejoin fires may recreate an entry there,
    // so the total can exceed the distinct-session count — it must never
    // fall below it.)
    let resident: usize = out.per_replica.iter().map(|r| r.sessions).sum();
    assert!(resident >= cfg.tenants * cfg.sessions_per_tenant);
    assert!(
        out.per_replica[1].sessions > 0,
        "rejoined replica must get its shard back"
    );
}

/// A flapping dispatch link (router → replica) is survivable too: the
/// dispatcher consults the link oracle and routes around the flap.
#[test]
fn dispatch_link_flap_routes_around() {
    let cfg = cfg(3);
    let plan = FaultPlan::new(SEED).flap_replica_link(0, 2, 6);
    let out = run_fleet(&cfg, PER_TENANT, SEED, plan, &[]).unwrap();
    assert_no_drop(&out, 3 * PER_TENANT);
    assert_eq!(
        out.report.completed + out.report.timed_out + out.report.throttled,
        3 * PER_TENANT
    );
    assert!(
        out.report.completed > 2 * PER_TENANT,
        "flap must not stall the fleet"
    );
}
