//! Hierarchical chaos acceptance, end to end.
//!
//! Pins PR 9's contract: a 4-region hierarchical run where one relay
//! crashes mid-run, one region partitions, and one platform crash
//! triggers the per-region quorum — every round completes, platforms
//! are only ever dropped by a declared mechanism (orphaning or region
//! quorum, never silently), the whole run replays bit-identically from
//! one seed, and final accuracy stays within tolerance of the
//! fault-free hierarchical run.

use medsplit::core::{HierPolicy, HierReport, HierResilientTrainer, SplitConfig, TrainingHistory};
use medsplit::data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{ChaosTransport, FaultPlan, HierTopology, MemoryTransport, NodeId};

const ROUNDS: usize = 12;

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    })
}

fn data(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
    let train = SyntheticTabular::new(3, 8, 0).generate(240).unwrap();
    let test = SyntheticTabular::new(3, 8, 1).generate(60).unwrap();
    let shards = partition(&train, platforms, &Partition::Iid, 1).unwrap();
    (shards, test)
}

fn config() -> SplitConfig {
    SplitConfig {
        rounds: ROUNDS,
        eval_every: ROUNDS,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(10),
        ..SplitConfig::default()
    }
}

/// The acceptance fault plan on a 4-region × 2-platform hierarchy:
/// - platform 7 crashes for rounds `[2, 4)` — its region-mate is then
///   dropped by the per-region quorum of 2, so region 3 sits out whole;
/// - relay 1 crashes for rounds `[4, 8)` — its platforms re-home to a
///   backup relay and keep participating;
/// - region 2 partitions for rounds `[6, 9)` — its platforms are
///   orphaned and those rounds degrade; the re-homed region-1 platforms
///   must skip the partitioned relay 2 when picking a backup.
fn acceptance_plan(topo: &HierTopology) -> FaultPlan {
    FaultPlan::new(4242)
        .crash(NodeId::Platform(7), 2)
        .recover(NodeId::Platform(7), 4)
        .crash_relay(1, 4)
        .recover_relay(1, 8)
        .partition_region(topo, 2, 6, 9)
}

fn run(plan: FaultPlan) -> (TrainingHistory, HierReport) {
    let topo = HierTopology::new(4, 2);
    let chaos = ChaosTransport::new(MemoryTransport::new(topo.clone()), plan);
    let (shards, test) = data(topo.platforms());
    let hier = HierPolicy {
        region_quorum: 2,
        ..HierPolicy::default()
    };
    let mut trainer = HierResilientTrainer::new(&arch(), config(), hier, topo, shards, test, &chaos).unwrap();
    let history = trainer.run().unwrap();
    let report = trainer.report().clone();
    (history, report)
}

#[test]
fn acceptance_four_regions_relay_crash_and_partition() {
    let topo = HierTopology::new(4, 2);
    let (clean, clean_report) = run(FaultPlan::new(4242));
    let (faulty, report) = run(acceptance_plan(&topo));

    assert_eq!(faulty.records.len(), ROUNDS, "every round must complete");
    assert_eq!(faulty.method, "split_hier_resilient");

    // The fault-free hierarchy never drops, re-homes, or degrades.
    assert_eq!(clean_report.rehomes, 0);
    assert_eq!(clean_report.orphaned_platform_rounds, 0);
    assert_eq!(clean.degraded_rounds(), 0);

    // Fault bookkeeping is exact: one relay crash + recovery, one
    // platform crash + rejoin.
    assert_eq!(report.relay_crashes, 1);
    assert_eq!(report.relay_rejoins, 1);
    assert_eq!(report.base.crashes, 1);
    assert_eq!(report.base.rejoins, 1);

    // Region 3 is dropped whole by its quorum in rounds 2 and 3.
    assert_eq!(report.region_quorum_drops, 2);
    // Relay 1's platforms (2, 3) re-home every round of [4, 8): to
    // relay 2 while it is reachable, to relay 3 once region 2
    // partitions at round 6.
    assert_eq!(report.rehomes, 8);
    assert_eq!(report.direct_fallbacks, 0);
    // Region 2's platforms (4, 5) are orphaned for rounds [6, 9).
    assert_eq!(report.orphaned_platform_rounds, 6);

    // Participants per round: drops happen only through a declared
    // mechanism (crash, region quorum, partition orphaning) — never a
    // missed deadline or silent skip.
    assert_eq!(report.base.skipped_platform_rounds, 0);
    assert_eq!(report.base.quorum_failures, 0);
    for r in &faulty.records {
        let expected = match r.round {
            2 | 3 => 6, // region 3 out: platform 7 crashed + quorum drop
            6..=8 => 6, // region 2 orphaned by the partition
            _ => 8,
        };
        assert_eq!(r.participants, expected, "round {}", r.round);
        assert_eq!(r.degraded, expected < 8, "round {}", r.round);
    }
    assert_eq!(faulty.degraded_rounds(), 5);

    // Relay traffic kept flowing around the failures.
    assert!(report.relay_batches > 0);
    assert!(report.region_bytes.iter().all(|&b| b > 0));

    // Accuracy tolerance vs the fault-free hierarchical run.
    assert!(
        faulty.final_accuracy >= clean.final_accuracy - 0.05,
        "faulty accuracy {} must be within 5 points of fault-free {}",
        faulty.final_accuracy,
        clean.final_accuracy
    );

    // Bit-identical replay from the single seed.
    let (replay, replay_report) = run(acceptance_plan(&topo));
    assert_eq!(report, replay_report, "fault counters must replay identically");
    assert_eq!(
        faulty.stats, replay.stats,
        "wire accounting must replay identically"
    );
    assert_eq!(faulty.final_accuracy.to_bits(), replay.final_accuracy.to_bits());
    for (a, b) in faulty.records.iter().zip(&replay.records) {
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        assert_eq!(a.cumulative_bytes, b.cumulative_bytes);
    }
}

/// Loss and corruption on the relay paths are absorbed by the same
/// retry/checksum machinery as the star driver, and the damaged run
/// still replays bit-identically.
#[test]
fn lossy_hierarchy_retries_and_replays() {
    let plan = || FaultPlan::new(7).with_drop(0.08).with_corrupt(0.04);
    let (h1, r1) = run(plan());
    assert_eq!(h1.records.len(), ROUNDS);
    assert!(r1.base.retries > 0, "loss must exercise the retry path");
    assert!(r1.base.checksum_rejections > 0, "corruption must be caught");
    let (h2, r2) = run(plan());
    assert_eq!(r1, r2);
    assert_eq!(h1.stats, h2.stats);
    assert_eq!(h1.final_accuracy.to_bits(), h2.final_accuracy.to_bits());
}
