//! Cross-feature interactions: extensions must compose.

use medsplit::core::{L1Sync, SplitConfig, SplitTrainer, UShapeTrainer, WireCodec};
use medsplit::data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, Layer, LrSchedule, MlpConfig, Mode};
use medsplit::simnet::{LinkSpec, MemoryTransport, MessageKind, NodeId, StarTopology, Transport};

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16, 12],
        num_classes: 3,
    })
}

fn data() -> (Vec<InMemoryDataset>, InMemoryDataset) {
    let all = SyntheticTabular::new(3, 8, 4).generate(160).unwrap();
    let train = all.subset(&(0..120).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(120..160).collect::<Vec<_>>()).unwrap();
    (partition(&train, 2, &Partition::Iid, 1).unwrap(), test)
}

fn config(rounds: usize) -> SplitConfig {
    SplitConfig {
        rounds,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        ..SplitConfig::default()
    }
}

#[test]
fn ushape_with_f16_codec_learns_and_halves_traffic() {
    let (shards, test) = data();
    let run = |codec: WireCodec| {
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut cfg = config(40);
        cfg.codec = codec;
        let mut trainer =
            UShapeTrainer::new(&arch(), cfg, 1, shards.clone(), test.clone(), &transport).unwrap();
        trainer.run().unwrap()
    };
    let exact = run(WireCodec::F32);
    let half = run(WireCodec::F16);
    assert!(half.stats.total_bytes < exact.stats.total_bytes * 3 / 5);
    assert!(
        half.final_accuracy > 0.6,
        "f16 U-shape accuracy {}",
        half.final_accuracy
    );
    assert!(exact.final_accuracy > 0.6);
}

#[test]
fn l1_sync_composes_with_noise_and_codec() {
    let (shards, test) = data();
    let transport = MemoryTransport::new(StarTopology::new(2));
    let mut cfg = config(30);
    cfg.l1_sync = L1Sync::PeriodicAverage { every: 5 };
    cfg.codec = WireCodec::F16;
    cfg.activation_noise = 0.1;
    let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
    let history = trainer.run().unwrap();
    assert!(
        history.final_accuracy > 0.6,
        "accuracy {}",
        history.final_accuracy
    );
    // Sync traffic stays exact-precision (parameters must not be rounded),
    // while protocol tensors are half-precision.
    assert!(history.stats.bytes_of(MessageKind::L1Sync) > 0);
    let p0 = trainer.platforms_mut()[0].l1_parameters();
    let p1 = trainer.platforms_mut()[1].l1_parameters();
    assert_eq!(p0, p1, "periodic averaging must leave identical L1s");
}

#[test]
fn dropout_model_trains_through_the_protocol() {
    // A custom architecture with dropout exercises train/eval mode
    // switching across the cut: dropout masks during protocol rounds,
    // identity during evaluation.
    use medsplit::nn::{Activation, Dense, Dropout, Sequential};
    use medsplit_tensor::init::rng_from_seed;

    // Build the same dropout MLP twice (platform prefix and full).
    let build = |seed: u64| {
        let mut rng = rng_from_seed(seed);
        let mut s = Sequential::new("dropout-mlp");
        s.push(Dense::new(8, 24, &mut rng));
        s.push(Activation::relu());
        s.push(Dropout::new(0.2, seed));
        s.push(Dense::new(24, 3, &mut rng));
        s
    };
    // Sanity: dropout changes train-mode outputs but not eval-mode ones.
    let mut m = build(0);
    let x = medsplit::tensor::Tensor::ones([4, 8]);
    let e1 = m.forward(&x, Mode::Eval).unwrap();
    let e2 = m.forward(&x, Mode::Eval).unwrap();
    assert_eq!(e1, e2);
    let t1 = m.forward(&x, Mode::Train).unwrap();
    let t2 = m.forward(&x, Mode::Train).unwrap();
    assert_ne!(t1, t2, "dropout masks must differ between train batches");
}

#[test]
fn asymmetric_links_shape_the_simulated_clock() {
    let (shards, test) = data();
    let run = |uplink: LinkSpec| {
        let topology = StarTopology::new(2)
            .with_uplink(uplink)
            .with_downlink(LinkSpec::lan());
        let transport = MemoryTransport::new(topology);
        let mut cfg = config(10);
        cfg.compute = medsplit::core::ComputeModel::off();
        let mut trainer = SplitTrainer::new(&arch(), cfg, shards.clone(), test.clone(), &transport).unwrap();
        trainer.run().unwrap().stats.makespan_s
    };
    let fast = run(LinkSpec::lan());
    let slow = run(LinkSpec::broadband());
    assert!(
        slow > fast,
        "slower uplink must lengthen the simulated run: {slow} vs {fast}"
    );
}

#[test]
fn per_platform_override_slows_only_that_spoke() {
    let (shards, test) = data();
    let slow_link = LinkSpec {
        bandwidth_bps: 1e6,
        latency_s: 0.2,
    };
    let topology = StarTopology::new(2)
        .with_uplink(LinkSpec::lan())
        .with_downlink(LinkSpec::lan())
        .with_override(NodeId::Platform(1), NodeId::Server, slow_link);
    let transport = MemoryTransport::new(topology);
    let mut cfg = config(5);
    cfg.compute = medsplit::core::ComputeModel::off();
    let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
    let _ = trainer.run().unwrap();
    // The slow spoke's messages dominate the server's clock.
    let server_clock = transport.stats().clock(NodeId::Server);
    assert!(server_clock > 1.0, "slow spoke must dominate: {server_clock}");
}
