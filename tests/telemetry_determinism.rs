//! The telemetry determinism guard: training results must be
//! bit-identical with tracing on and off.
//!
//! Telemetry only reads clocks and pushes records — it must never touch
//! RNG state, model parameters, or the simulated network. This test runs
//! the same 4-platform split-training configuration twice in one process
//! (tracing force-enabled, then force-disabled) and asserts every
//! deterministic output matches to the bit: per-round losses, accuracy,
//! byte/message accounting, and the learned `L1` parameters.
//!
//! `wall_time_s` is excluded (host timing is never deterministic); the
//! enable flag is process-global, which is why this guard lives in its
//! own integration-test binary.

use medsplit::core::{SplitConfig, SplitTrainer, TrainingHistory};
use medsplit::data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};
use medsplit::tensor::Tensor;

const PLATFORMS: usize = 4;
const ROUNDS: usize = 6;

fn run_once() -> (TrainingHistory, Vec<Tensor>) {
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    });
    let all = SyntheticTabular::new(3, 8, 0).generate(160).unwrap();
    let train = all.subset(&(0..128).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(128..160).collect::<Vec<_>>()).unwrap();
    let shards = partition(&train, PLATFORMS, &Partition::Iid, 1).unwrap();
    let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
    let config = SplitConfig {
        rounds: ROUNDS,
        eval_every: 3,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport).unwrap();
    let history = trainer.run().unwrap();
    let params: Vec<Tensor> = trainer
        .platforms_mut()
        .iter_mut()
        .map(|p| p.l1_parameters())
        .collect();
    (history, params)
}

#[test]
fn training_is_bit_identical_with_tracing_on_and_off() {
    medsplit::telemetry::set_enabled(true);
    let (traced, traced_params) = run_once();
    // The traced run actually recorded something — otherwise this guard
    // compares an instrumented run against itself.
    let spans = medsplit::telemetry::drain_spans();
    assert!(
        spans.iter().any(|s| s.name == "round"),
        "tracing was enabled but recorded no round spans"
    );

    medsplit::telemetry::set_enabled(false);
    let (plain, plain_params) = run_once();
    assert!(
        medsplit::telemetry::drain_spans().is_empty(),
        "tracing was disabled but still recorded spans"
    );

    // Bit-exact equality of everything deterministic. f32 comparisons are
    // exact on purpose: telemetry must not perturb a single operation.
    assert_eq!(traced.final_accuracy.to_bits(), plain.final_accuracy.to_bits());
    assert_eq!(traced.stats.total_bytes, plain.stats.total_bytes);
    assert_eq!(traced.stats.messages, plain.stats.messages);
    assert_eq!(traced.stats.by_kind, plain.stats.by_kind);
    assert_eq!(traced.stats.msgs_by_kind, plain.stats.msgs_by_kind);
    assert_eq!(traced.stats.uplink_bytes, plain.stats.uplink_bytes);
    assert_eq!(traced.stats.downlink_bytes, plain.stats.downlink_bytes);
    assert_eq!(
        traced.stats.makespan_s.to_bits(),
        plain.stats.makespan_s.to_bits()
    );

    assert_eq!(traced.records.len(), plain.records.len());
    for (a, b) in traced.records.iter().zip(&plain.records) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.lr.to_bits(), b.lr.to_bits(), "round {}", a.round);
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits(), "round {}", a.round);
        assert_eq!(a.cumulative_bytes, b.cumulative_bytes, "round {}", a.round);
        assert_eq!(
            a.simulated_time_s.to_bits(),
            b.simulated_time_s.to_bits(),
            "round {}",
            a.round
        );
        assert_eq!(
            a.accuracy.map(f32::to_bits),
            b.accuracy.map(f32::to_bits),
            "round {}",
            a.round
        );
        // wall_time_s intentionally not compared: host timing.
    }

    assert_eq!(traced_params.len(), plain_params.len());
    for (i, (a, b)) in traced_params.iter().zip(&plain_params).enumerate() {
        assert_eq!(a, b, "platform {i} L1 parameters differ");
    }
}
