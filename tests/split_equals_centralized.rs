//! The protocol-correctness theorem: with a single platform and aggregate
//! scheduling, split learning computes *exactly* the same training
//! trajectory as centralised training of the unsplit model — the cut plus
//! serialisation round-trips change nothing about the arithmetic.

use medsplit::baselines::{train_centralized, BaselineConfig};
use medsplit::core::{ComputeModel, Scheduling, SplitConfig, SplitPoint, SplitTrainer};
use medsplit::data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, Layer, LrSchedule, MlpConfig, Mode};
use medsplit::simnet::{MemoryTransport, StarTopology};

fn data() -> (InMemoryDataset, InMemoryDataset) {
    let all = SyntheticTabular::new(3, 6, 5).generate(120).unwrap();
    let train = all.subset(&(0..90).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(90..120).collect::<Vec<_>>()).unwrap();
    (train, test)
}

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 6,
        hidden: vec![16, 8],
        num_classes: 3,
    })
}

#[test]
fn single_platform_split_matches_centralized_exactly() {
    let (train, test) = data();
    let rounds = 25;
    let seed = 77;
    let batch = 10;

    // Split run: one platform holding L1, server holding the rest.
    let transport = MemoryTransport::new(StarTopology::new(1));
    let config = SplitConfig {
        split: SplitPoint::Default,
        scheduling: Scheduling::Aggregate,
        minibatch: MinibatchPolicy::Fixed(batch),
        lr: LrSchedule::Constant(0.1),
        momentum: 0.9,
        rounds,
        eval_every: 0,
        seed,
        compute: ComputeModel::off(),
        ..SplitConfig::default()
    };
    let mut trainer =
        SplitTrainer::new(&arch(), config, vec![train.clone()], test.clone(), &transport).unwrap();
    let split_history = trainer.run().unwrap();

    // Centralised run with the same seed, batch and schedule.
    let transport2 = MemoryTransport::new(StarTopology::new(1));
    let bconfig = BaselineConfig {
        lr: LrSchedule::Constant(0.1),
        momentum: 0.9,
        rounds,
        eval_every: 0,
        seed,
        minibatch: MinibatchPolicy::Fixed(batch),
        compute: ComputeModel::off(),
    };
    let central_history = train_centralized(
        &arch(),
        &bconfig,
        std::slice::from_ref(&train),
        &test,
        &transport2,
    )
    .unwrap();

    // Same losses every round (identical arithmetic)...
    for (a, b) in split_history.records.iter().zip(&central_history.records) {
        assert!(
            (a.mean_loss - b.mean_loss).abs() < 1e-6,
            "round {}: split loss {} vs centralized {}",
            a.round,
            a.mean_loss,
            b.mean_loss
        );
    }
    // ...and identical final accuracy.
    assert!(
        (split_history.final_accuracy - central_history.final_accuracy).abs() < 1e-6,
        "split {} vs centralized {}",
        split_history.final_accuracy,
        central_history.final_accuracy
    );
}

#[test]
fn composed_split_model_equals_directly_trained_model_outputs() {
    let (train, test) = data();
    let transport = MemoryTransport::new(StarTopology::new(1));
    let config = SplitConfig {
        minibatch: MinibatchPolicy::Fixed(10),
        lr: LrSchedule::Constant(0.1),
        rounds: 10,
        eval_every: 0,
        seed: 3,
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch(), config, vec![train], test.clone(), &transport).unwrap();
    let _ = trainer.run().unwrap();

    // Composing L1 with the server layers must behave like one network:
    // batch-size independence of inference.
    let idx: Vec<usize> = (0..20).collect();
    let (features, _) = test.batch(&idx).unwrap();
    let acts = trainer.platforms_mut()[0].infer_l1(&features).unwrap();
    let logits_batch = trainer.server_mut().infer(&acts).unwrap();
    for i in 0..4 {
        let (one, _) = test.batch(&[i]).unwrap();
        let a1 = trainer.platforms_mut()[0].infer_l1(&one).unwrap();
        let l1 = trainer.server_mut().infer(&a1).unwrap();
        let row = logits_batch.row(i).unwrap();
        assert!(
            l1.flatten().allclose(&row, 1e-4),
            "row {i} differs between batch and single inference"
        );
    }
}

#[test]
fn multi_platform_split_beats_untrained_and_tracks_central() {
    let (train, test) = data();
    let shards = partition(&train, 3, &Partition::Iid, 1).unwrap();
    let transport = MemoryTransport::new(StarTopology::new(3));
    let config = SplitConfig {
        minibatch: MinibatchPolicy::Fixed(6),
        lr: LrSchedule::Constant(0.1),
        rounds: 50,
        eval_every: 0,
        seed: 9,
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch(), config, shards, test.clone(), &transport).unwrap();
    let split_acc = trainer.run().unwrap().final_accuracy;

    // Fresh untrained model accuracy for reference.
    let mut fresh = arch().build(9);
    let idx: Vec<usize> = (0..test.len()).collect();
    let (features, labels) = test.batch(&idx).unwrap();
    let logits = fresh.forward(&features, Mode::Eval).unwrap();
    let untrained = medsplit::nn::accuracy(&logits, &labels).unwrap();

    assert!(
        split_acc > untrained + 0.25,
        "split {split_acc} should clearly beat untrained {untrained}"
    );
}
