//! Quickstart: train a split model across three simulated hospitals.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use medsplit::core::{SplitConfig, SplitTrainer};
use medsplit::data::{partition, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small tabular "patient record" classification task. A separation
    // below the noise level keeps the task non-trivial so the learning
    // curve is visible.
    let mut gen = SyntheticTabular::new(4, 16, 0);
    gen.separation = 0.55;
    let all = gen.generate(500)?;
    let train = all.subset(&(0..400).collect::<Vec<_>>())?;
    let test = all.subset(&(400..500).collect::<Vec<_>>())?;

    // Three hospitals hold disjoint shards; raw records never leave them.
    let shards = partition(&train, 3, &Partition::Iid, 7)?;
    for (i, s) in shards.iter().enumerate() {
        println!("hospital {i}: {} local records", s.len());
    }

    // The network: an MLP whose first hidden layer (L1) stays on each
    // hospital while the rest lives on the central server.
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 16,
        hidden: vec![64, 32],
        num_classes: 4,
    });

    let transport = MemoryTransport::new(StarTopology::new(3));
    let config = SplitConfig {
        rounds: 150,
        eval_every: 25,
        lr: LrSchedule::Constant(0.05),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport)?;
    let history = trainer.run()?;

    println!("\nround  loss    bytes        accuracy");
    for r in history.records.iter().filter(|r| r.accuracy.is_some()) {
        println!(
            "{:>5}  {:<6.4} {:<12} {:.1}%",
            r.round,
            r.mean_loss,
            r.cumulative_bytes,
            r.accuracy.unwrap() * 100.0
        );
    }
    println!(
        "\nfinal accuracy {:.1}% — {} bytes transmitted, {} messages, raw patient data sent: 0",
        history.final_accuracy * 100.0,
        history.stats.total_bytes,
        history.stats.messages
    );
    // Where the bytes went: the paper's four-message protocol, by kind.
    println!("\nkind         messages  bytes");
    for (kind, bytes) in &history.stats.by_kind {
        println!(
            "{:<12} {:>8}  {}",
            kind.as_str(),
            history.stats.messages_of(*kind),
            bytes
        );
    }
    // With MEDSPLIT_TRACE=1 this dumps the run's spans and counters to
    // trace.jsonl (or $MEDSPLIT_TRACE_FILE) for `trace_report`; without
    // it, tracing is off and this is a no-op returning None.
    if let Some(path) = medsplit::telemetry::write_configured()? {
        println!("\ntrace written to {}", path.display());
    }
    Ok(())
}
