//! The paper's headline comparison at example scale: split learning vs
//! FedAvg vs large-scale synchronous SGD on the same hospital shards,
//! reporting exactly what each method put on the wire.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example bandwidth_comparison --release
//! ```

use medsplit::baselines::{train_fedavg, train_sync_sgd, BaselineConfig, FedAvgOptions, SyncSgdOptions};
use medsplit::core::{SplitConfig, SplitTrainer, TrainingHistory};
use medsplit::data::{partition, MinibatchPolicy, Partition, SyntheticImages};
use medsplit::nn::{Architecture, LrSchedule, VggConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};

const PLATFORMS: usize = 4;
const ROUNDS: usize = 120;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = SyntheticImages::lite(10, 1);
    let (train, test) = gen.generate_split(640, 160)?;
    let shards = partition(&train, PLATFORMS, &Partition::Iid, 2)?;
    let arch = Architecture::Vgg(VggConfig::lite(10));
    let minibatch = MinibatchPolicy::Proportional { global: 32 };

    let mut histories: Vec<TrainingHistory> = Vec::new();

    println!("running split learning ({ROUNDS} rounds)...");
    {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let config = SplitConfig {
            rounds: ROUNDS,
            eval_every: 30,
            lr: LrSchedule::Constant(0.05),
            minibatch,
            ..SplitConfig::default()
        };
        let mut trainer = SplitTrainer::new(&arch, config, shards.clone(), test.clone(), &transport)?;
        histories.push(trainer.run()?);
    }

    println!("running large-scale synchronous SGD ({ROUNDS} steps)...");
    {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let config = BaselineConfig {
            rounds: ROUNDS,
            eval_every: 30,
            lr: LrSchedule::Constant(0.05),
            minibatch,
            ..BaselineConfig::default()
        };
        histories.push(train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions::default(),
            shards.clone(),
            &test,
            &transport,
        )?);
    }

    println!("running FedAvg ({} rounds x 5 local steps)...", ROUNDS / 5);
    {
        let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
        let config = BaselineConfig {
            rounds: ROUNDS / 5,
            eval_every: 6,
            lr: LrSchedule::Constant(0.05),
            minibatch,
            ..BaselineConfig::default()
        };
        histories.push(train_fedavg(
            &arch,
            &config,
            FedAvgOptions { local_steps: 5 },
            shards,
            &test,
            &transport,
        )?);
    }

    println!(
        "\n{:<12} {:>14} {:>10}  accuracy-vs-bytes curve",
        "method", "transmitted", "accuracy"
    );
    for h in &histories {
        let curve: Vec<String> = h
            .curve()
            .iter()
            .map(|(b, a)| format!("{:.1}MB@{:.0}%", *b as f64 / 1e6, a * 100.0))
            .collect();
        println!(
            "{:<12} {:>11.2} MB {:>9.1}%  {}",
            h.method,
            h.stats.total_bytes as f64 / 1e6,
            h.final_accuracy * 100.0,
            curve.join(" -> ")
        );
    }

    let split = &histories[0];
    let sgd = &histories[1];
    println!(
        "\nfor the same {} update steps, sync-SGD transmitted {:.1}x the bytes of split learning",
        ROUNDS,
        sgd.stats.total_bytes as f64 / split.stats.total_bytes as f64
    );
    Ok(())
}
