//! Split-inference serving: three hospitals answer patient queries
//! against a shared model without raw features ever leaving the
//! hospital. Each platform runs `L1` locally and ships (possibly noised)
//! activations; the central server batches requests from all platforms,
//! runs `L2..Lk`, and returns logits — with dynamic batching, admission
//! control, per-request deadlines, and simulated-time latency accounting.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example serving --release
//! ```

use medsplit::core::{build_split, Platform, SplitPoint, SplitServer, WireCodec};
use medsplit::data::SyntheticTabular;
use medsplit::nn::{Architecture, MlpConfig};
use medsplit::serve::{serve_threaded, ServeConfig};
use medsplit::simnet::{MemoryTransport, StarTopology};
use medsplit::tensor::{init, Tensor};

const PLATFORMS: usize = 3;
const FEATURES: usize = 16;
const CLASSES: usize = 4;
const QUERIES_PER_PLATFORM: usize = 100;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the split model and its per-hospital actors, exactly like a
    // deployment would after training.
    let arch = Architecture::Mlp(MlpConfig::small(FEATURES, CLASSES));
    let model = build_split(&arch, SplitPoint::Default, 7, PLATFORMS)?;
    let mut platforms = Vec::new();
    for (id, client) in model.clients.into_iter().enumerate() {
        let shard = SyntheticTabular::new(CLASSES, FEATURES, id as u64).generate(32)?;
        let mut p = Platform::new(id, client, shard, 8, 0.0, 7);
        // The serving path transmits activations too, so the privacy
        // noise defence applies at inference time as well.
        p.set_activation_noise(0.05);
        platforms.push(p);
    }
    let server = SplitServer::new(model.server, 0.0);

    // Patient queries arriving open-loop at each hospital.
    let mut rng = init::rng_from_seed(99);
    let queries: Vec<Vec<Tensor>> = (0..PLATFORMS)
        .map(|_| {
            (0..QUERIES_PER_PLATFORM)
                .map(|_| Tensor::rand_uniform([1, FEATURES], -1.0, 1.0, &mut rng))
                .collect()
        })
        .collect();

    let topology = StarTopology::new(PLATFORMS);
    let transport = MemoryTransport::new(topology.clone());
    let cfg = ServeConfig {
        max_batch: 8,          // flush when 8 requests are pending...
        max_wait_s: 0.010,     // ...or the oldest has waited 10 ms
        queue_capacity: 32,    // reject beyond 32 pending (backpressure)
        deadline_s: 0.250,     // answer within 250 ms or report a timeout
        offered_rps: 150.0,    // per-hospital offered load
        codec: WireCodec::F16, // halve the serving traffic
        ..ServeConfig::default()
    };

    println!(
        "serving {} queries from {PLATFORMS} hospitals at {} req/s each...",
        PLATFORMS * QUERIES_PER_PLATFORM,
        cfg.offered_rps
    );
    let outcome = serve_threaded(platforms, server, queries, &topology, &cfg, &transport)?;

    let r = &outcome.report;
    println!(
        "\ncompleted {}  rejected {}  timed out {}",
        r.completed, r.rejected, r.timed_out
    );
    if let Some(lat) = &r.latency {
        println!(
            "latency  p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  max {:.1} ms",
            lat.p50_s * 1e3,
            lat.p95_s * 1e3,
            lat.p99_s * 1e3,
            lat.max_s * 1e3
        );
    }
    println!(
        "wire     {:.0} B/request up, {:.0} B/request down (f16 codec)",
        r.request_bytes_per_offered(),
        r.response_bytes_per_offered()
    );
    println!(
        "goodput  {:.0} completed/s over a {:.2} s simulated run",
        r.goodput_rps(),
        r.makespan_s
    );

    // Every record carries its logits; show one prediction.
    if let Some(rec) = outcome.records.iter().find(|rec| rec.logits.is_some()) {
        let logits = rec.logits.as_ref().expect("filtered on Some");
        let class = logits
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty logits");
        println!(
            "\nexample: hospital {} request {} → class {class} ({:.1} ms)",
            rec.platform,
            rec.id & 0xFFFF_FFFF,
            rec.latency_s * 1e3
        );
    }
    Ok(())
}
