//! Operational resilience: what happens when hospitals crash or lag, and
//! how the server recovers from its own failures.
//!
//! Part 1 — a hospital dies mid-study and another straggles: large-scale
//! synchronous SGD stalls without backup workers, survives with them.
//! Part 2 — the central server crashes: training resumes from a
//! checkpoint blob without retraining.
//! Part 3 — the fault-tolerant split trainer: one hospital crashes and
//! rejoins from its checkpoint, another straggles past the round
//! deadline, 10 % of messages are dropped — and the study still
//! completes under a quorum policy, deterministically from one seed.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example resilience --release
//! ```

use medsplit::baselines::{train_sync_sgd, BaselineConfig, SyncSgdOptions};
use medsplit::core::{ResilientTrainer, SplitConfig, SplitTrainer};
use medsplit::data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit::nn::{Architecture, LrSchedule, MlpConfig};
use medsplit::simnet::{
    ChaosTransport, FaultKind, FaultPlan, FaultyTransport, MemoryTransport, NodeId, StarTopology,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 12,
        hidden: vec![32, 16],
        num_classes: 4,
    });
    let mut gen = SyntheticTabular::new(4, 12, 3);
    gen.separation = 0.8;
    let all = gen.generate(500)?;
    let train = all.subset(&(0..400).collect::<Vec<_>>())?;
    let test = all.subset(&(400..500).collect::<Vec<_>>())?;
    let shards = partition(&train, 4, &Partition::Iid, 1)?;

    // ---- Part 1: dead + straggling hospitals under sync-SGD -------------
    println!("== Part 1: hospital failures under large-scale synchronous SGD ==");
    let config = BaselineConfig {
        rounds: 60,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        ..Default::default()
    };

    // Without backup workers, one dead hospital stalls the whole study.
    {
        let transport = FaultyTransport::new(MemoryTransport::new(StarTopology::new(4)));
        transport.set_fault(NodeId::Platform(1), FaultKind::Dead);
        match train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions::default(),
            shards.clone(),
            &test,
            &transport,
        ) {
            Err(e) => println!("no backups, hospital 1 dead  -> training stalls: {e}"),
            Ok(_) => println!("unexpected success"),
        }
    }
    // With one backup worker the study completes despite a death AND a
    // straggler.
    {
        let transport = FaultyTransport::new(MemoryTransport::new(StarTopology::new(4)));
        transport.set_fault(NodeId::Platform(1), FaultKind::Dead);
        transport.set_fault(NodeId::Platform(3), FaultKind::Slow(3.0));
        let history = train_sync_sgd(
            &arch,
            &config,
            SyncSgdOptions { backup_workers: 1 },
            shards.clone(),
            &test,
            &transport,
        )?;
        println!(
            "1 backup, hospital 1 dead + hospital 3 slow -> {:.1}% accuracy, {:.1} s simulated",
            history.final_accuracy * 100.0,
            history.stats.makespan_s
        );
    }

    // ---- Part 2: server crash + checkpoint recovery under split ---------
    println!("\n== Part 2: server crash recovery under split learning ==");
    let split_config = SplitConfig {
        rounds: 40,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        momentum: 0.0,
        ..SplitConfig::default()
    };
    let t1 = MemoryTransport::new(StarTopology::new(4));
    let mut phase1 = SplitTrainer::new(&arch, split_config.clone(), shards.clone(), test.clone(), &t1)?;
    let h1 = phase1.run()?;
    let server_blob = phase1.server_mut().checkpoint();
    let platform_blobs: Vec<_> = phase1
        .platforms_mut()
        .iter_mut()
        .map(|p| p.checkpoint())
        .collect();
    println!(
        "phase 1: {:.1}% accuracy after {} rounds; checkpointed {} server bytes",
        h1.final_accuracy * 100.0,
        split_config.rounds,
        server_blob.len()
    );

    // The server "crashes": a brand-new deployment restores the blobs.
    let t2 = MemoryTransport::new(StarTopology::new(4));
    let mut cfg2 = split_config;
    cfg2.seed = 12345; // fresh random init — only the checkpoint carries state
    let mut phase2 = SplitTrainer::new(&arch, cfg2, shards.clone(), test.clone(), &t2)?;
    phase2.server_mut().restore(&server_blob)?;
    for (p, blob) in phase2.platforms_mut().iter_mut().zip(&platform_blobs) {
        p.restore(blob)?;
    }
    let resumed = phase2.evaluate()?;
    println!(
        "phase 2: restored accuracy {:.1}% (bit-exact match: {})",
        resumed * 100.0,
        resumed == h1.final_accuracy
    );
    let h2 = phase2.run()?;
    println!(
        "phase 2: {:.1}% accuracy after {} more rounds — study completed despite the crash",
        h2.final_accuracy * 100.0,
        40
    );

    // ---- Part 3: fault-tolerant split training under chaos --------------
    println!("\n== Part 3: quorum rounds under loss, a crash and a straggler ==");
    let mut chaos_config = SplitConfig {
        rounds: 40,
        eval_every: 0,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(8),
        momentum: 0.0,
        ..SplitConfig::default()
    };
    // Proceed while at least 2 of 4 hospitals answer; skip anyone slower
    // than 2 simulated seconds per round.
    chaos_config.round_policy.min_platforms = 2;
    chaos_config.round_policy.deadline_s = 2.0;

    // Everything below — which messages drop, when hospital 1 dies and
    // rejoins, how badly hospital 3 lags — replays from this one seed.
    let plan = FaultPlan::new(42)
        .with_drop(0.10)
        .crash(NodeId::Platform(1), 10)
        .recover(NodeId::Platform(1), 25)
        .straggler(NodeId::Platform(3), 5.0);
    let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), plan);
    let mut trainer =
        ResilientTrainer::new(&arch, chaos_config.clone(), shards.clone(), test.clone(), &chaos)?;
    let faulty = trainer.run()?;
    let report = trainer.report();
    println!(
        "chaos run: {:.1}% accuracy, {} / {} rounds degraded, {} retries, \
         {} crash / {} rejoin, {} straggler round-skips",
        faulty.final_accuracy * 100.0,
        faulty.degraded_rounds(),
        chaos_config.rounds,
        report.retries,
        report.crashes,
        report.rejoins,
        report.skipped_platform_rounds,
    );

    // The same study with a healthy network, for comparison.
    let calm = ChaosTransport::new(MemoryTransport::new(StarTopology::new(4)), FaultPlan::new(42));
    let mut baseline = ResilientTrainer::new(&arch, chaos_config, shards, test, &calm)?;
    let clean = baseline.run()?;
    println!(
        "fault-free:  {:.1}% accuracy — chaos cost {:.1} accuracy points",
        clean.final_accuracy * 100.0,
        (clean.final_accuracy - faulty.final_accuracy) * 100.0
    );
    Ok(())
}
