//! A realistic geo-distributed scenario: five hospitals of very different
//! sizes (power-law), non-uniform WAN links, the paper's proportional
//! minibatch mitigation, and the thread-per-node runtime — each hospital
//! really runs on its own OS thread and talks to the server only through
//! the simulated network.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example hospital_network --release
//! ```

use medsplit::core::threaded::train_threaded;
use medsplit::core::{ComputeModel, SplitConfig};
use medsplit::data::{partition, MinibatchPolicy, Partition, SyntheticImages};
use medsplit::nn::{Architecture, LrSchedule, VggConfig};
use medsplit::simnet::{LinkSpec, MemoryTransport, MessageKind, NodeId, StarTopology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const HOSPITALS: usize = 5;

    // Synthetic "medical imaging" data with CIFAR-like tensor shapes.
    let gen = SyntheticImages::lite(10, 42);
    let (train, test) = gen.generate_split(800, 200)?;

    // Power-law shard sizes: one university hospital, several clinics.
    let shards = partition(&train, HOSPITALS, &Partition::PowerLaw { alpha: 1.2 }, 3)?;
    println!("hospital shards (power-law imbalance):");
    let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
    let batches = MinibatchPolicy::Proportional { global: 40 }.sizes(&sizes);
    for (i, (n, b)) in sizes.iter().zip(&batches).enumerate() {
        println!("  hospital {i}: {n:>4} images  -> minibatch s_{i} = {b}");
    }

    // Star topology: hospital 4 is a rural clinic on a slow uplink.
    let topology = StarTopology::new(HOSPITALS)
        .with_uplink(LinkSpec::wan())
        .with_downlink(LinkSpec::wan())
        .with_override(NodeId::Platform(4), NodeId::Server, LinkSpec::broadband());
    let transport = MemoryTransport::new(topology);

    let arch = Architecture::Vgg(VggConfig::lite(10));
    let config = SplitConfig {
        rounds: 60,
        eval_every: 0,
        lr: LrSchedule::Constant(0.05),
        minibatch: MinibatchPolicy::Proportional { global: 40 },
        compute: ComputeModel::hospital_default(),
        ..SplitConfig::default()
    };

    println!("\ntraining with one OS thread per hospital + one for the server...");
    let history = train_threaded(&arch, config, shards, test, &transport)?;

    let snap = &history.stats;
    println!("\nfinal accuracy: {:.1}%", history.final_accuracy * 100.0);
    println!("simulated wall-clock: {:.1} s", snap.makespan_s);
    println!(
        "total transmitted:    {:.2} MB over {} messages",
        snap.total_bytes as f64 / 1e6,
        snap.messages
    );
    println!(
        "  uplink   (hospitals -> server): {:.2} MB",
        snap.uplink_bytes as f64 / 1e6
    );
    println!(
        "  downlink (server -> hospitals): {:.2} MB",
        snap.downlink_bytes as f64 / 1e6
    );
    println!("per message kind:");
    for (kind, bytes) in &snap.by_kind {
        println!("  {:<12} {:.2} MB", kind.to_string(), *bytes as f64 / 1e6);
    }
    assert_eq!(
        snap.by_kind.iter().find(|(k, _)| *k == MessageKind::RawData),
        None
    );
    println!("\nraw patient data transmitted: none (only L1 activations and gradients)");
    Ok(())
}
