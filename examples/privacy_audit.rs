//! Privacy audit: what could an honest-but-curious server learn from the
//! activations a hospital transmits?
//!
//! Trains a split VGG briefly, then runs the leakage probes (distance
//! correlation and a linear reconstruction attack) against the
//! transmitted representation at two different cut depths.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example privacy_audit --release
//! ```

use medsplit::core::{SplitConfig, SplitPoint, SplitTrainer};
use medsplit::data::{partition, Partition, SyntheticImages};
use medsplit::nn::{Architecture, LrSchedule, VggConfig};
use medsplit::privacy::assess_l1_leakage;
use medsplit::simnet::{MemoryTransport, StarTopology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = SyntheticImages::lite(10, 9);
    let (train, test) = gen.generate_split(400, 120)?;
    let shards = partition(&train, 3, &Partition::Iid, 4)?;
    let arch = Architecture::Vgg(VggConfig::lite(10));

    // Probe inputs: raw "patient images" the server never sees directly.
    let idx: Vec<usize> = (0..100).collect();
    let (probe_inputs, _) = test.batch(&idx)?;

    for (label, cut) in [
        ("paper default: after the first conv block", SplitPoint::Default),
        ("deeper cut: after the second pooling stage", SplitPoint::At(8)),
    ] {
        let transport = MemoryTransport::new(StarTopology::new(3));
        let config = SplitConfig {
            split: cut,
            rounds: 40,
            eval_every: 0,
            lr: LrSchedule::Constant(0.05),
            ..SplitConfig::default()
        };
        let mut trainer = SplitTrainer::new(&arch, config, shards.clone(), test.clone(), &transport)?;
        let history = trainer.run()?;

        let platform = &mut trainer.platforms_mut()[0];
        let acts = platform.infer_l1(&probe_inputs)?;
        let report = assess_l1_leakage(platform.model_mut(), &probe_inputs, 1e-2)?;

        println!("=== {label} ===");
        println!("model accuracy        : {:.1}%", history.final_accuracy * 100.0);
        println!(
            "transmitted per sample: {} floats (raw input would be {} floats)",
            acts.numel() / probe_inputs.dims()[0],
            probe_inputs.numel() / probe_inputs.dims()[0]
        );
        println!("{report}");
        println!();
    }

    println!("note: deeper cuts shrink the transmitted representation and its leakage,");
    println!("at the cost of more computation on the hospital side (see fig5 bench).");
    Ok(())
}
