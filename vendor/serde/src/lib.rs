//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as derive annotations on `Shape` and
//! `Tensor`; no serialiser ever runs (the exact binary wire format in
//! `medsplit-tensor` is hand-written). This stand-in keeps those
//! annotations compiling offline: the traits are markers and the derives
//! (feature `derive`) expand to nothing.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
