//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact subset of the `bytes` API it uses: cheaply-cloneable
//! immutable [`Bytes`], an append-only [`BytesMut`] builder, and the
//! little-endian cursor traits [`Buf`] / [`BufMut`] the tensor wire format
//! is written against. Semantics match the real crate for this subset;
//! `Bytes::slice` and `clone` share the underlying allocation.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones and [`slice`](Bytes::slice) views share one reference-counted
/// allocation; no data is copied.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (zero-copy in the real crate;
    /// one copy into an `Arc` here, which is observationally equivalent).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of a subrange, sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; [`freeze`](BytesMut::freeze) converts it into
/// an immutable [`Bytes`] without copying.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a contiguous byte source, little-endian accessors
/// included. Matches the subset of `bytes::Buf` the wire format uses.
pub trait Buf {
    /// Bytes remaining to be consumed.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out of the cursor, advancing it.
    ///
    /// # Panics
    ///
    /// Panics if the cursor has fewer than `dst.len()` bytes left.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

/// Write cursor; little-endian writers over a growable buffer. Matches
/// the subset of `bytes::BufMut` the wire format uses.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_u16_le(7);
        buf.put_f32_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 4 + 8 + 2 + 4);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_u16_le(), 7);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn buf_for_slices() {
        let raw = [1u8, 0, 0, 0];
        let mut s: &[u8] = &raw;
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
