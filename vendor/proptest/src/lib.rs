//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API surface this workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`], and
//! the `prop_assert*` macros — as a plain random-sampling engine.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the sampled inputs via the
//!   assertion message but is not minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name (FNV-1a), so failures reproduce exactly across runs; set
//!   `PROPTEST_CASES` to change the case count (default 64).

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The sampling loop behind [`proptest!`](crate::proptest).

    use rand::SeedableRng;

    /// RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// A failed or rejected property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The sampled inputs did not satisfy a `prop_assume!` and the
        /// case should be discarded, not counted as a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Creates a rejection (discarded case) with a message.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) | TestCaseError::Reject(m) => f.write_str(m),
            }
        }
    }

    /// Result of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `f` until [`case_count`] cases pass, seeded from `name` so
    /// failures reproduce across runs. Rejected cases (`prop_assume!`)
    /// are discarded and resampled, up to 10× the case budget.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, or if too many cases are
    /// rejected to reach the case budget.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let cases = case_count();
        let mut rng = TestRng::seed_from_u64(fnv1a(name));
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        while accepted < cases {
            attempts += 1;
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    assert!(
                        attempts < cases.saturating_mul(10),
                        "property {name}: too many rejected cases ({attempts} attempts \
                         for {accepted}/{cases} accepted) — loosen the prop_assume!"
                    );
                }
                Err(TestCaseError::Fail(m)) => {
                    panic!("property {name} failed at case {accepted}/{cases}: {m}");
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the `prop` module alias in the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    {
                        $body
                    }
                    ::core::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the runner can report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "assertion failed: `{:?} == {:?}`", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Discards the current case (resampling instead of failing) when its
/// inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?} != {:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shapes() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..=6, 1..=3)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -1.5f32..1.5, z in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
            prop_assert!(z <= 5);
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0usize..4, 10usize..20), v in shapes()) {
            prop_assert!(a < 4 && (10..20).contains(&b));
            prop_assert!((1..=3).contains(&v.len()));
            prop_assert!(v.iter().all(|&d| (1..=6).contains(&d)));
        }

        #[test]
        fn flat_map_dependent(v in shapes().prop_flat_map(|dims| {
            let n: usize = dims.iter().product();
            prop::collection::vec(0.0f32..1.0, n..=n).prop_map(move |data| (dims.clone(), data))
        })) {
            let (dims, data) = v;
            prop_assert_eq!(dims.iter().product::<usize>(), data.len());
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::SeedableRng;
        let s = prop::collection::vec(0usize..100, 5..=5);
        let a = s.sample(&mut TestRng::seed_from_u64(1));
        let b = s.sample(&mut TestRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        crate::test_runner::run("always_fails", |_rng| {
            crate::prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
