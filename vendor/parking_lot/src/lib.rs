//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics for the
//! subset this workspace uses: infallible [`Mutex::lock`] (poisoning is
//! ignored — a panicked holder does not wedge the lock), [`Condvar`] with
//! deadline waits, and an [`RwLock`]. Fairness and micro-performance of
//! the real crate are not reproduced; correctness semantics are.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar waits can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never fails: a
    /// poisoned lock (panicked holder) is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a [`Condvar`] wait with a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the deadline passed (as opposed
    /// to a notification or spurious wakeup).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified (or a spurious wakeup).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes; like the real crate,
    /// callers must re-check their predicate in a loop.
    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

/// A reader-writer lock with infallible acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_is_exclusive() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                if res.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());

        // Deadline in the past times out immediately.
        let mut g = m.lock();
        assert!(cv.wait_until(&mut g, Instant::now()).timed_out());
    }

    #[test]
    fn poisoning_is_recovered() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
