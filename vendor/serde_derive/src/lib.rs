//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing ever serialises through serde (the wire format
//! is the hand-written exact binary encoding in `medsplit-tensor`). These
//! derives therefore expand to nothing, keeping the annotations valid
//! without a serialisation framework in the build.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
