//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the subset this workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 —
//! *not* the same stream as upstream's ChaCha12, but just as
//! deterministic), and [`seq::SliceRandom`] for Fisher–Yates shuffles.
//!
//! Streams differ from upstream `rand`, so seeds reproduce results only
//! within this workspace — which is all the experiments require.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) at full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// A single pair of blanket `SampleRange` impls is keyed on this trait
/// (mirroring upstream `rand`), which lets type inference unify the
/// range's element type with `gen_range`'s return type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Closing the top endpoint of a continuous range is a
                // measure-zero distinction; sample as half-open.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The user-facing random-value API, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard deterministic RNG: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += f64::from(v);
        }
        // Mean of U[0,1) over 10k draws is ~0.5 ± a few sigma.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Referenced through &mut dyn-style generic too.
        let r = &mut rng;
        v.shuffle(r);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
