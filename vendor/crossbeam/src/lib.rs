//! Offline stand-in for the `crossbeam` crate.
//!
//! Two modules are provided — the ones this workspace uses:
//! [`thread`] (scoped threads), implemented on top of
//! `std::thread::scope`, which has equivalent semantics since Rust 1.63,
//! and [`channel`] (multi-producer multi-consumer channels), implemented
//! with a mutex-guarded queue, which matches the real crate's API for the
//! job-granularity traffic of the tensor worker pool.

/// Multi-producer, multi-consumer FIFO channels.
///
/// API-compatible subset of `crossbeam-channel`: [`unbounded`], cloneable
/// [`Sender`]/[`Receiver`], blocking [`Receiver::recv`] and non-blocking
/// [`Receiver::try_recv`]. Built on `Mutex<VecDeque>` + `Condvar`, which
/// is plenty for coarse-grained job dispatch (the only use here).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an [`unbounded`] channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an [`unbounded`] channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::Release) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                let _guard = self.chan.queue.lock().unwrap();
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::Release);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.chan.queue.lock().unwrap();
            q.push_back(msg);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is gone.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap();
            }
        }

        /// Dequeues a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if no message is queued,
        /// [`TryRecvError::Disconnected`] if additionally every sender is
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<i32>();
            drop(rx2);
            assert_eq!(tx2.send(5), Err(SendError(5)));
        }

        #[test]
        fn multiple_consumers_drain_everything() {
            let (tx, rx) = unbounded::<usize>();
            let n = 100;
            let counted: usize = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut got = 0;
                            while rx.recv().is_ok() {
                                got += 1;
                            }
                            got
                        })
                    })
                    .collect();
                for i in 0..n {
                    tx.send(i).unwrap();
                }
                drop(tx);
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(counted, n);
        }
    }
}

/// Scoped threads: spawn borrowing threads that are guaranteed to be
/// joined before the scope returns.
pub mod thread {
    use std::any::Any;
    use std::io;
    use std::marker::PhantomData;

    /// Error payload of a panicked thread.
    pub type ThreadPanic = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the closure of [`scope`] and to every
    /// spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to join a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, ThreadPanic> {
            self.inner.join()
        }

        /// The spawned thread's handle.
        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }
    }

    /// Configures a thread before spawning it in a scope (name only; the
    /// stack-size knob of the real crate is not needed here).
    pub struct ScopedThreadBuilder<'s, 'scope, 'env> {
        scope: &'s Scope<'scope, 'env>,
        builder: std::thread::Builder,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'s, 'scope, 'env> ScopedThreadBuilder<'s, 'scope, 'env> {
        /// Names the thread.
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Spawns the configured thread. The closure receives the scope,
        /// so it can spawn further threads.
        ///
        /// # Errors
        ///
        /// Returns an I/O error if the OS fails to create the thread.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self.scope;
            let inner = self.builder.spawn_scoped(scope.inner, move || f(&scope))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread in the scope.
        ///
        /// # Panics
        ///
        /// Panics if the OS fails to create the thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.builder().spawn(f).expect("failed to spawn scoped thread")
        }

        /// Starts configuring a thread to spawn in the scope.
        pub fn builder(&self) -> ScopedThreadBuilder<'_, 'scope, 'env> {
            ScopedThreadBuilder {
                scope: self,
                builder: std::thread::Builder::new(),
                _marker: PhantomData,
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns.
    ///
    /// Unlike the real crate, a panic in an *unjoined* thread propagates
    /// as a panic out of `scope` rather than as an `Err`; every caller in
    /// this workspace joins all its handles, where the two behave alike.
    ///
    /// # Errors
    ///
    /// Present for signature compatibility; this implementation returns
    /// `Ok` whenever it returns normally.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ThreadPanic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3];
            let sum = super::scope(|s| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|&v| {
                        s.builder()
                            .name(format!("worker-{v}"))
                            .spawn(move |_| v * 10)
                            .unwrap()
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(sum, 60);
        }

        #[test]
        fn join_surfaces_panics() {
            let caught = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join().is_err()
            })
            .unwrap();
            assert!(caught);
        }

        #[test]
        fn nested_spawn_via_scope_arg() {
            let n = super::scope(|s| {
                let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}
