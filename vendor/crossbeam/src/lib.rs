//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread`] (scoped threads) is provided — the one `crossbeam`
//! module this workspace uses — implemented on top of
//! `std::thread::scope`, which has equivalent semantics since Rust 1.63.

/// Scoped threads: spawn borrowing threads that are guaranteed to be
/// joined before the scope returns.
pub mod thread {
    use std::any::Any;
    use std::io;
    use std::marker::PhantomData;

    /// Error payload of a panicked thread.
    pub type ThreadPanic = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the closure of [`scope`] and to every
    /// spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to join a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, ThreadPanic> {
            self.inner.join()
        }

        /// The spawned thread's handle.
        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }
    }

    /// Configures a thread before spawning it in a scope (name only; the
    /// stack-size knob of the real crate is not needed here).
    pub struct ScopedThreadBuilder<'s, 'scope, 'env> {
        scope: &'s Scope<'scope, 'env>,
        builder: std::thread::Builder,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'s, 'scope, 'env> ScopedThreadBuilder<'s, 'scope, 'env> {
        /// Names the thread.
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Spawns the configured thread. The closure receives the scope,
        /// so it can spawn further threads.
        ///
        /// # Errors
        ///
        /// Returns an I/O error if the OS fails to create the thread.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self.scope;
            let inner = self.builder.spawn_scoped(scope.inner, move || f(&scope))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread in the scope.
        ///
        /// # Panics
        ///
        /// Panics if the OS fails to create the thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.builder().spawn(f).expect("failed to spawn scoped thread")
        }

        /// Starts configuring a thread to spawn in the scope.
        pub fn builder(&self) -> ScopedThreadBuilder<'_, 'scope, 'env> {
            ScopedThreadBuilder {
                scope: self,
                builder: std::thread::Builder::new(),
                _marker: PhantomData,
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns.
    ///
    /// Unlike the real crate, a panic in an *unjoined* thread propagates
    /// as a panic out of `scope` rather than as an `Err`; every caller in
    /// this workspace joins all its handles, where the two behave alike.
    ///
    /// # Errors
    ///
    /// Present for signature compatibility; this implementation returns
    /// `Ok` whenever it returns normally.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ThreadPanic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3];
            let sum = super::scope(|s| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|&v| {
                        s.builder()
                            .name(format!("worker-{v}"))
                            .spawn(move |_| v * 10)
                            .unwrap()
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(sum, 60);
        }

        #[test]
        fn join_surfaces_panics() {
            let caught = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join().is_err()
            })
            .unwrap();
            assert!(caught);
        }

        #[test]
        fn nested_spawn_via_scope_arg() {
            let n = super::scope(|s| {
                let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}
