//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! median-of-runs wall-clock timer instead of criterion's statistical
//! machinery. Good enough to spot order-of-magnitude regressions and to
//! keep `--all-targets` builds compiling offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computation whose result is
/// otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) times the
/// hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting several samples of batched invocations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so one sample is ≥ ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..Self::SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    const SAMPLES: usize = 11;

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => format!(
            " ({:.1} MiB/s)",
            b as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / median.as_secs_f64()),
    });
    println!(
        "bench {name:<40} median {median:>12.3?}{}",
        rate.unwrap_or_default()
    );
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        report(&name.to_string(), b.median(), None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            prefix: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting on subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name), b.median(), self.throughput);
        self
    }

    /// Finishes the group (reporting is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
